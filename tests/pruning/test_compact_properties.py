"""Property test: compaction preserves the masked model's function."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.models import CNN5
from repro.pruning import ChannelMask, compact_model, expand_channel_mask
from repro.tensor import Tensor


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    keep1=st.lists(st.booleans(), min_size=10, max_size=10),
    keep2=st.lists(st.booleans(), min_size=20, max_size=20),
)
def test_compaction_equivalence_random_masks(seed, keep1, keep2):
    """For ANY channel mask (with >= 1 survivor per layer), compacted == masked."""
    keep1 = np.array(keep1)
    keep2 = np.array(keep2)
    if not keep1.any():
        keep1[0] = True
    if not keep2.any():
        keep2[0] = True

    rng = np.random.default_rng(seed)
    model = CNN5(rng=rng)
    x = rng.normal(size=(3, 1, 28, 28))
    # Settle BN stats, then freeze in eval mode.
    model.train()
    model(Tensor(x))
    model.eval()

    channels = ChannelMask({"bn1": keep1, "bn2": keep2})
    compacted = compact_model(model, channels)
    compacted.eval()
    expand_channel_mask(model, channels).apply_to_model(model)

    np.testing.assert_allclose(
        compacted(Tensor(x)).data, model(Tensor(x)).data, atol=1e-9
    )
    # Structural check: widths really shrank.
    assert compacted.conv1.out_channels == int(keep1.sum())
    assert compacted.conv2.in_channels == int(keep1.sum())
    assert compacted.fc1.in_features == int(keep2.sum()) * 16
