"""Lottery-ticket rewind mode of the pruning controller."""

import numpy as np
import pytest

from repro.models import MLP
from repro.pruning import PruningController, UnstructuredConfig


def make(rng, rewind, **cfg):
    model = MLP(8, 2, hidden=(6,), rng=rng)
    defaults = dict(target_rate=0.5, step=0.5, epsilon=0.0, acc_threshold=0.0)
    defaults.update(cfg)
    controller = PruningController(
        model, unstructured=UnstructuredConfig(rewind=rewind, **defaults)
    )
    return model, controller


def drift(model, rng):
    for _, param in model.named_parameters():
        param.data += rng.normal(scale=0.5, size=param.shape)


class TestRewind:
    def test_commit_resets_kept_weights_to_init(self, rng):
        model, controller = make(rng, rewind=True)
        init = {
            name: param.data.copy() for name, param in model.named_parameters()
        }
        first = controller.snapshot()
        drift(model, rng)
        last = controller.snapshot()
        decision = controller.update(1.0, first, last)
        assert decision.unstructured_applied
        params = dict(model.named_parameters())
        for name in controller.un_names:
            mask = controller.un_mask[name]
            kept = mask == 1
            np.testing.assert_allclose(params[name].data[kept], init[name][kept])
            np.testing.assert_allclose(params[name].data[~kept], 0.0)

    def test_no_rewind_keeps_trained_weights(self, rng):
        model, controller = make(rng, rewind=False)
        init = {
            name: param.data.copy() for name, param in model.named_parameters()
        }
        first = controller.snapshot()
        drift(model, rng)
        last = controller.snapshot()
        controller.update(1.0, first, last)
        params = dict(model.named_parameters())
        name = controller.un_names[0]
        kept = controller.un_mask[name] == 1
        assert not np.allclose(params[name].data[kept], init[name][kept])

    def test_rewind_without_commit_is_noop(self, rng):
        model, controller = make(rng, rewind=True, acc_threshold=0.99)
        first = controller.snapshot()
        drift(model, rng)
        snapshot_after_drift = {
            name: param.data.copy() for name, param in model.named_parameters()
        }
        last = controller.snapshot()
        decision = controller.update(0.1, first, last)  # fails the acc gate
        assert not decision.unstructured_applied
        params = dict(model.named_parameters())
        for name, value in snapshot_after_drift.items():
            np.testing.assert_array_equal(params[name].data, value)

    def test_no_init_snapshot_without_rewind(self, rng):
        _, controller = make(rng, rewind=False)
        assert controller._init_state is None

    def test_uncovered_tensors_not_rewound(self, rng):
        """Biases are outside the unstructured scope: they keep training."""
        model, controller = make(rng, rewind=True)
        init_bias = model.fc1.bias.data.copy()
        first = controller.snapshot()
        drift(model, rng)
        last = controller.snapshot()
        controller.update(1.0, first, last)
        assert not np.allclose(model.fc1.bias.data, init_bias)
