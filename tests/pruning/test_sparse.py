"""Sparse wire-format encoding of pruned uploads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import CNN5
from repro.pruning import (
    MaskSet,
    decode_state,
    encode_state,
    magnitude_mask,
    payload_bytes,
    upload_size_bytes,
)


class TestRoundTrip:
    def test_exact_on_kept_zero_on_pruned(self, rng):
        state = {"w": rng.normal(size=(6, 5)).astype(np.float32).astype(np.float64)}
        mask = MaskSet({"w": (rng.random((6, 5)) > 0.5).astype(float)})
        decoded = decode_state(encode_state(state, mask))
        keep = mask["w"].astype(bool)
        np.testing.assert_array_equal(decoded["w"][keep], state["w"][keep])
        np.testing.assert_array_equal(decoded["w"][~keep], 0.0)

    def test_float32_is_the_only_loss(self, rng):
        state = {"w": rng.normal(size=100)}
        mask = MaskSet({"w": np.ones(100)})
        decoded = decode_state(encode_state(state, mask))
        np.testing.assert_allclose(decoded["w"], state["w"], atol=1e-6)

    def test_uncovered_tensors_skipped(self, rng):
        state = {"w": rng.normal(size=4), "b": rng.normal(size=2)}
        mask = MaskSet({"w": np.ones(4)})
        payloads = encode_state(state, mask)
        assert set(payloads) == {"w"}

    def test_shape_mismatch_raises(self, rng):
        state = {"w": rng.normal(size=4)}
        mask = MaskSet({"w": np.ones(5)})
        with pytest.raises(ValueError):
            encode_state(state, mask)

    def test_corrupt_payload_detected(self, rng):
        state = {"w": rng.normal(size=8)}
        mask = MaskSet({"w": np.ones(8)})
        payloads = encode_state(state, mask)
        payloads["w"].values = payloads["w"].values[:-1]  # drop one value
        with pytest.raises(ValueError, match="corrupt"):
            decode_state(payloads)

    @settings(max_examples=25, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=64),
        rate=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_property_roundtrip_any_mask(self, size, rate):
        rng = np.random.default_rng(0)
        state = {"w": rng.normal(size=size)}
        mask = magnitude_mask(state, ["w"], rate=rate)
        decoded = decode_state(encode_state(state, mask))
        keep = mask["w"].astype(bool)
        np.testing.assert_allclose(decoded["w"][keep], state["w"][keep], atol=1e-6)
        assert (decoded["w"][~keep] == 0).all()


class TestSizeAccounting:
    def test_payload_bytes_matches_helper(self, rng):
        model = CNN5(rng=rng)
        state = model.state_dict()
        names = model.prunable_weight_names()
        mask = magnitude_mask(state, names, rate=0.5)
        payloads = encode_state(state, mask)
        assert payload_bytes(payloads) == upload_size_bytes(state, mask)

    def test_size_shrinks_with_sparsity(self, rng):
        state = {"w": rng.normal(size=1000)}
        sizes = []
        for rate in (0.0, 0.5, 0.9):
            mask = magnitude_mask(state, ["w"], rate=rate)
            sizes.append(upload_size_bytes(state, mask))
        assert sizes == sorted(sizes, reverse=True)

    def test_matches_cost_model_convention(self, rng):
        """4 bytes per kept value + 1 bit per coordinate (packed to bytes)."""
        state = {"w": rng.normal(size=80)}
        mask = magnitude_mask(state, ["w"], rate=0.25)
        expected = 60 * 4 + 80 // 8
        assert upload_size_bytes(state, mask) == expected
