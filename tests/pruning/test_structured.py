"""Channel pruning: BN-scale thresholding, mask expansion, reductions."""

import numpy as np
import pytest

from repro.models import CNN5, LeNet5, create_model
from repro.pruning import (
    ChannelMask,
    bn_scale_channel_mask,
    expand_channel_mask,
    reduction_report,
)
from repro.tensor import Tensor


class TestChannelMask:
    def test_counts(self):
        mask = ChannelMask({"bn1": np.array([True, False]), "bn2": np.ones(3, bool)})
        assert mask.kept_channels() == 4
        assert mask.total_channels() == 5
        assert mask.sparsity() == pytest.approx(0.2)

    def test_intersect(self):
        a = ChannelMask({"bn": np.array([True, True, False])})
        b = ChannelMask({"bn": np.array([True, False, False])})
        np.testing.assert_array_equal(a.intersect(b)["bn"], [True, False, False])

    def test_distance(self):
        a = ChannelMask({"bn": np.array([True, True, True, True])})
        b = ChannelMask({"bn": np.array([True, False, True, False])})
        assert a.distance(b) == 0.5

    def test_distance_empty(self):
        assert ChannelMask().distance(ChannelMask()) == 0.0

    def test_dense_for_model(self, rng):
        mask = ChannelMask.dense_for(LeNet5(rng=rng))
        assert mask.total_channels() == 22
        assert mask.sparsity() == 0.0

    def test_equality(self):
        a = ChannelMask({"bn": np.array([True])})
        b = ChannelMask({"bn": np.array([True])})
        assert a == b


class TestBnScaleMask:
    def make_model(self, rng):
        model = CNN5(rng=rng)
        # Plant known gamma magnitudes: bn1 channels 0..9, bn2 channels 10..29.
        model.bn1.weight.data[...] = np.arange(1.0, 11.0)
        model.bn2.weight.data[...] = np.arange(11.0, 31.0)
        return model

    def test_global_percentile(self, rng):
        model = self.make_model(rng)
        mask = bn_scale_channel_mask(model, rate=1.0 / 3.0)
        # The 10 smallest gammas are exactly bn1's channels.
        assert mask["bn1"].sum() == 0 or mask["bn1"].sum() == 1  # min_channels guard
        assert mask["bn2"].sum() == 20

    def test_min_channels_guard(self, rng):
        model = self.make_model(rng)
        mask = bn_scale_channel_mask(model, rate=0.9, min_channels=2)
        assert mask["bn1"].sum() >= 2
        assert mask["bn2"].sum() >= 2

    def test_guard_keeps_strongest(self, rng):
        model = self.make_model(rng)
        mask = bn_scale_channel_mask(model, rate=0.9, min_channels=1)
        # The resurrected channel must be bn1's largest gamma (index 9).
        if mask["bn1"].sum() == 1:
            assert mask["bn1"][9]

    def test_zero_rate_dense(self, rng):
        model = self.make_model(rng)
        mask = bn_scale_channel_mask(model, rate=0.0)
        assert mask.sparsity() == 0.0

    def test_previous_monotonicity(self, rng):
        model = self.make_model(rng)
        previous = ChannelMask.dense_for(model)
        previous["bn2"][19] = False  # channel with the largest gamma pruned before
        mask = bn_scale_channel_mask(model, rate=0.1, previous=previous)
        assert not mask["bn2"][19]

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            bn_scale_channel_mask(self.make_model(rng), rate=1.0)


class TestExpandChannelMask:
    def test_covers_expected_tensors(self, rng):
        model = CNN5(rng=rng)
        channels = ChannelMask.dense_for(model)
        channels["bn1"][0] = False
        masks = expand_channel_mask(model, channels)
        for name in (
            "conv1.weight",
            "conv1.bias",
            "bn1.weight",
            "bn1.bias",
            "conv2.weight",
        ):
            assert name in masks

    def test_filter_row_and_downstream_column_pruned(self, rng):
        model = CNN5(rng=rng)
        channels = ChannelMask.dense_for(model)
        channels["bn1"][3] = False
        masks = expand_channel_mask(model, channels)
        assert (masks["conv1.weight"][3] == 0).all()
        assert (masks["conv2.weight"][:, 3] == 0).all()
        assert masks["bn1.weight"][3] == 0

    def test_last_unit_prunes_fc_columns(self, rng):
        model = CNN5(rng=rng)
        channels = ChannelMask.dense_for(model)
        channels["bn2"][5] = False
        masks = expand_channel_mask(model, channels)
        per_channel = 16  # 4x4 spatial
        column_block = masks["fc1.weight"][:, 5 * per_channel : 6 * per_channel]
        assert (column_block == 0).all()
        other_block = masks["fc1.weight"][:, :5 * per_channel]
        assert (other_block == 1).all()

    def test_masked_model_channel_output_is_zero(self, rng):
        """Functional check: a pruned channel contributes nothing downstream."""
        model = CNN5(rng=rng)
        x = rng.normal(size=(4, 1, 28, 28))
        channels = ChannelMask.dense_for(model)
        channels["bn1"][2] = False
        masks = expand_channel_mask(model, channels)
        masks.apply_to_model(model)
        model.eval()
        from repro.tensor import conv2d, batch_norm

        conv_out = model.conv1(Tensor(x))
        bn_out = model.bn1(conv_out)
        np.testing.assert_allclose(bn_out.data[:, 2], 0.0)

    def test_missing_spatial_raises(self, rng):
        model = CNN5(rng=rng)
        object.__setattr__(model.conv_units[-1], "spatial", None) if False else None
        # Build a model variant with broken metadata instead:
        from repro.models.base import ConvUnit

        model.__class__ = type(
            "Broken",
            (CNN5,),
            {
                "conv_units": [
                    ConvUnit("conv1", "bn1", next_conv="conv2"),
                    ConvUnit("conv2", "bn2", next_conv=None, spatial=None),
                ]
            },
        )
        channels = ChannelMask.dense_for(model)
        with pytest.raises(ValueError, match="spatial"):
            expand_channel_mask(model, channels)


class TestReductionReport:
    def test_dense_flops_lenet(self, rng):
        model = LeNet5(rng=rng)
        report = reduction_report(model, None, input_size=32)
        # conv1: 28^2 * 25 * 3 * 6; conv2: 10^2 * 25 * 6 * 16
        assert report.dense_flops == 28 ** 2 * 25 * 3 * 6 + 10 ** 2 * 25 * 6 * 16
        assert report.pruned_flops == report.dense_flops
        assert report.flop_reduction == 1.0

    def test_half_channels_gives_paper_factor(self, rng):
        """The paper's Table 2: ~2.4x FLOP reduction at 50% channels."""
        model = LeNet5(rng=rng)
        channels = ChannelMask(
            {
                "bn1": np.array([True] * 3 + [False] * 3),
                "bn2": np.array([True] * 8 + [False] * 8),
            }
        )
        report = reduction_report(model, channels, input_size=32)
        assert 2.0 < report.flop_reduction < 3.0

    def test_param_reduction_positive(self, rng):
        model = LeNet5(rng=rng)
        channels = ChannelMask(
            {"bn1": np.array([True] * 3 + [False] * 3), "bn2": np.ones(16, bool)}
        )
        report = reduction_report(model, channels, input_size=32)
        assert 0.0 < report.param_reduction < 1.0

    def test_paper_example_half_channels_param_saving(self, rng):
        """§4.2.3: pruning 11/22 LeNet-5 channels saves ~38% of parameters."""
        model = LeNet5(rng=rng)
        channels = ChannelMask(
            {
                "bn1": np.array([True] * 3 + [False] * 3),
                "bn2": np.array([True] * 8 + [False] * 8),
            }
        )
        report = reduction_report(model, channels, input_size=32)
        assert 0.25 < report.param_reduction < 0.55

    def test_all_channels_pruned_infinite_speedup(self, rng):
        model = CNN5(rng=rng)
        channels = ChannelMask(
            {"bn1": np.zeros(10, bool), "bn2": np.zeros(20, bool)}
        )
        report = reduction_report(model, channels, input_size=28)
        assert report.flop_reduction == float("inf")
