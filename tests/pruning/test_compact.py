"""Physical compaction: the masked and compacted models must agree exactly."""

import numpy as np
import pytest

from repro.models import CNN5, LeNet5
from repro.pruning import (
    ChannelMask,
    compact_model,
    compaction_summary,
    expand_channel_mask,
)
from repro.tensor import Tensor


def mask_for(model, pruned):
    """ChannelMask pruning the given {bn_name: [indices]} channels."""
    channels = ChannelMask.dense_for(model)
    for bn_name, indices in pruned.items():
        keep = channels[bn_name].copy()
        keep[list(indices)] = False
        channels[bn_name] = keep
    return channels


def settle_bn_stats(model, x, steps=3):
    """Run a few training-mode forwards so running stats are non-trivial."""
    model.train()
    for _ in range(steps):
        model(Tensor(x))
    model.eval()


class TestEquivalence:
    @pytest.mark.parametrize(
        "model_cls,input_shape,pruned",
        [
            (CNN5, (5, 1, 28, 28), {"bn1": [0, 4], "bn2": [1, 7, 13]}),
            (LeNet5, (5, 3, 32, 32), {"bn1": [2], "bn2": [0, 5, 10, 15]}),
        ],
    )
    def test_masked_equals_compacted(self, rng, model_cls, input_shape, pruned):
        model = model_cls(rng=rng)
        x = rng.normal(size=input_shape)
        settle_bn_stats(model, x)

        channels = mask_for(model, pruned)
        compacted = compact_model(model, channels)
        compacted.eval()

        # Mask the original in place (simulated sparsity).
        expand_channel_mask(model, channels).apply_to_model(model)
        model.eval()

        masked_out = model(Tensor(x)).data
        compact_out = compacted(Tensor(x)).data
        np.testing.assert_allclose(compact_out, masked_out, atol=1e-10)

    def test_training_mode_equivalence(self, rng):
        """Batch statistics are per-channel, so train mode agrees too."""
        model = CNN5(rng=rng)
        x = rng.normal(size=(8, 1, 28, 28))
        channels = mask_for(model, {"bn1": [1], "bn2": [3, 9]})
        compacted = compact_model(model, channels)
        expand_channel_mask(model, channels).apply_to_model(model)
        model.train()
        compacted.train()
        np.testing.assert_allclose(
            compacted(Tensor(x)).data, model(Tensor(x)).data, atol=1e-10
        )


class TestShapes:
    def test_layer_widths_shrink(self, rng):
        model = CNN5(rng=rng)
        channels = mask_for(model, {"bn1": [0, 1, 2], "bn2": [0, 1, 2, 3]})
        compacted = compact_model(model, channels)
        assert compacted.conv1.out_channels == 7
        assert compacted.conv2.in_channels == 7
        assert compacted.conv2.out_channels == 16
        assert compacted.bn1.num_features == 7
        assert compacted.fc1.in_features == 16 * 16  # 16 channels x 4x4

    def test_parameter_count_drops(self, rng):
        model = LeNet5(rng=rng)
        channels = mask_for(model, {"bn1": [0, 1, 2], "bn2": list(range(8))})
        compacted = compact_model(model, channels)
        summary = compaction_summary(model, compacted)
        assert summary["compact_params"] < summary["dense_params"]
        assert summary["param_reduction"] > 0.2
        assert summary["compact_channels"] == 22 - 11

    def test_original_untouched(self, rng):
        model = CNN5(rng=rng)
        before = model.state_dict()
        compact_model(model, mask_for(model, {"bn1": [0]}))
        after = model.state_dict()
        for name, value in before.items():
            np.testing.assert_array_equal(value, after[name])

    def test_compacted_state_dict_consistent(self, rng):
        model = CNN5(rng=rng)
        compacted = compact_model(model, mask_for(model, {"bn1": [0, 1]}))
        state = compacted.state_dict()
        assert state["conv1.weight"].shape == (8, 1, 5, 5)
        assert state["bn1.running_mean"].shape == (8,)


class TestValidation:
    def test_all_channels_pruned_rejected(self, rng):
        model = CNN5(rng=rng)
        channels = ChannelMask.dense_for(model)
        channels["bn1"] = np.zeros(10, dtype=bool)
        with pytest.raises(ValueError, match="all channels pruned"):
            compact_model(model, channels)

    def test_wrong_shape_rejected(self, rng):
        model = CNN5(rng=rng)
        channels = ChannelMask.dense_for(model)
        channels["bn1"] = np.ones(5, dtype=bool)
        with pytest.raises(ValueError, match="shape"):
            compact_model(model, channels)

    def test_unnamed_units_stay_full_width(self, rng):
        model = CNN5(rng=rng)
        channels = ChannelMask({"bn2": np.ones(20, dtype=bool)})
        compacted = compact_model(model, channels)
        assert compacted.conv1.out_channels == 10
