"""Non-IID partitioner invariants, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    ArrayDataset,
    DataConfig,
    build_client_data,
    dirichlet_partition,
    iid_partition,
    label_distribution,
    label_k_partition,
    label_overlap,
    label_test_view,
    load_dataset,
    partition_indices,
    quantity_skew_partition,
    shard_partition,
)


def balanced_labels(count, classes):
    return np.arange(count) % classes


class TestShardPartition:
    def test_disjoint_and_sized(self, rng):
        labels = balanced_labels(200, 10)
        parts = shard_partition(labels, num_clients=10, shards_per_client=2, rng=rng)
        assert len(parts) == 10
        all_indices = np.concatenate(parts)
        assert len(all_indices) == len(set(all_indices.tolist()))
        assert all(len(part) == 20 for part in parts)

    def test_pathological_label_skew(self, rng):
        """With 2 shards each, clients see at most ~2-3 distinct labels."""
        labels = balanced_labels(1000, 10)
        parts = shard_partition(labels, num_clients=10, shards_per_client=2, rng=rng)
        for part in parts:
            assert len(np.unique(labels[part])) <= 3

    def test_explicit_shard_size(self, rng):
        labels = balanced_labels(300, 10)
        parts = shard_partition(labels, 5, shards_per_client=2, shard_size=10, rng=rng)
        assert all(len(part) == 20 for part in parts)

    def test_too_small_dataset_raises(self, rng):
        with pytest.raises(ValueError):
            shard_partition(balanced_labels(10, 2), num_clients=20, rng=rng)

    def test_oversized_shards_raise(self, rng):
        with pytest.raises(ValueError, match="need"):
            shard_partition(balanced_labels(100, 10), 10, 2, shard_size=50, rng=rng)

    def test_deterministic_with_seed(self):
        labels = balanced_labels(200, 10)
        a = shard_partition(labels, 10, rng=np.random.default_rng(4))
        b = shard_partition(labels, 10, rng=np.random.default_rng(4))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    @settings(max_examples=20, deadline=None)
    @given(
        num_clients=st.integers(min_value=1, max_value=12),
        classes=st.integers(min_value=2, max_value=10),
    )
    def test_property_partition_is_exact_cover_of_used_examples(
        self, num_clients, classes
    ):
        labels = balanced_labels(num_clients * 2 * 10, classes)
        parts = shard_partition(
            labels, num_clients, shards_per_client=2, rng=np.random.default_rng(0)
        )
        merged = np.concatenate(parts)
        assert len(merged) == len(labels)
        assert len(set(merged.tolist())) == len(labels)


class TestDirichletPartition:
    def test_covers_everything(self, rng):
        labels = balanced_labels(500, 10)
        parts = dirichlet_partition(labels, 8, alpha=0.5, rng=rng)
        merged = np.concatenate(parts)
        assert len(merged) == 500
        assert len(set(merged.tolist())) == 500

    def test_min_size_respected(self, rng):
        parts = dirichlet_partition(balanced_labels(500, 5), 5, 0.3, rng, min_size=5)
        assert min(len(part) for part in parts) >= 5

    def test_low_alpha_is_more_skewed(self):
        labels = balanced_labels(2000, 10)
        entropies = {}
        for alpha in (0.1, 100.0):
            parts = dirichlet_partition(
                labels, 10, alpha, np.random.default_rng(0)
            )
            per_client = []
            for part in parts:
                _, counts = np.unique(labels[part], return_counts=True)
                probabilities = counts / counts.sum()
                per_client.append(-(probabilities * np.log(probabilities)).sum())
            entropies[alpha] = np.mean(per_client)
        assert entropies[0.1] < entropies[100.0]

    def test_invalid_alpha(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(balanced_labels(100, 5), 4, alpha=0.0, rng=rng)

    def test_exhausted_attempts_error_carries_context(self, rng):
        """The resample loop is bounded and its failure names the inputs."""
        with pytest.raises(RuntimeError) as excinfo:
            dirichlet_partition(
                balanced_labels(10, 2), 5, alpha=0.1, rng=rng,
                min_size=5, max_attempts=3,
            )
        message = str(excinfo.value)
        assert "alpha=0.1" in message
        assert "num_clients=5" in message
        assert "3 attempts" in message
        assert ">= 5" in message

    def test_min_size_and_attempts_come_from_config(self):
        """DataConfig carries the resample knobs; dispatch forwards them."""
        labels = balanced_labels(500, 5)
        config = DataConfig(
            partition="dirichlet", dirichlet_alpha=0.3, min_size=7, max_attempts=50
        )
        parts = partition_indices(labels, 5, config, np.random.default_rng(0))
        assert min(len(part) for part in parts) >= 7


class TestIIDPartition:
    def test_even_cover(self, rng):
        labels = balanced_labels(103, 10)
        parts = iid_partition(labels, 4, rng=rng)
        merged = np.concatenate(parts)
        assert len(set(merged.tolist())) == 103
        sizes = sorted(len(part) for part in parts)
        assert sizes[-1] - sizes[0] <= 1

    def test_deterministic_with_seed(self):
        labels = balanced_labels(200, 10)
        a = iid_partition(labels, 8, rng=np.random.default_rng(3))
        b = iid_partition(labels, 8, rng=np.random.default_rng(3))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_near_global_label_mix(self):
        labels = balanced_labels(2000, 10)
        parts = iid_partition(labels, 4, rng=np.random.default_rng(0))
        for part in parts:
            _, counts = np.unique(labels[part], return_counts=True)
            # Every class present, no class dominating: the IID control.
            assert len(counts) == 10
            assert counts.max() / counts.sum() < 0.25


class TestQuantitySkewPartition:
    def test_covers_everything_and_respects_floor(self):
        labels = balanced_labels(600, 10)
        parts = quantity_skew_partition(
            labels, 8, alpha=0.3, rng=np.random.default_rng(0), min_size=4
        )
        merged = np.concatenate(parts)
        assert len(set(merged.tolist())) == 600
        assert min(len(part) for part in parts) >= 4

    def test_low_alpha_concentrates_sizes(self):
        """Lower alpha -> heavier size skew (higher max/min client ratio)."""
        labels = balanced_labels(4000, 10)
        ratios = {}
        for alpha in (0.2, 100.0):
            sizes = [
                len(part)
                for part in quantity_skew_partition(
                    labels, 10, alpha=alpha, rng=np.random.default_rng(1)
                )
            ]
            ratios[alpha] = max(sizes) / min(sizes)
        assert ratios[0.2] > ratios[100.0]

    def test_deterministic_with_seed(self):
        labels = balanced_labels(300, 5)
        a = quantity_skew_partition(labels, 6, 0.5, np.random.default_rng(9))
        b = quantity_skew_partition(labels, 6, 0.5, np.random.default_rng(9))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            quantity_skew_partition(balanced_labels(100, 5), 4, alpha=0.0, rng=rng)
        with pytest.raises(ValueError, match="cannot give"):
            quantity_skew_partition(
                balanced_labels(10, 2), 8, alpha=1.0, rng=rng, min_size=5
            )


class TestLabelKPartition:
    def test_each_client_sees_exactly_k_labels(self):
        labels = balanced_labels(1000, 10)
        for k in (1, 2, 3):
            parts = label_k_partition(
                labels, 5, labels_per_client=k, rng=np.random.default_rng(0)
            )
            for part in parts:
                assert len(np.unique(labels[part])) == k

    def test_all_labels_covered_when_slots_suffice(self):
        labels = balanced_labels(1000, 10)
        parts = label_k_partition(
            labels, 5, labels_per_client=2, rng=np.random.default_rng(0)
        )
        owned = set()
        for part in parts:
            owned.update(np.unique(labels[part]).tolist())
        assert owned == set(range(10))

    def test_examples_not_duplicated(self):
        labels = balanced_labels(500, 10)
        parts = label_k_partition(
            labels, 10, labels_per_client=3, rng=np.random.default_rng(2)
        )
        merged = np.concatenate(parts)
        assert len(merged) == len(set(merged.tolist()))

    def test_deterministic_with_seed(self):
        labels = balanced_labels(400, 8)
        a = label_k_partition(labels, 6, 2, np.random.default_rng(5))
        b = label_k_partition(labels, 6, 2, np.random.default_rng(5))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError, match="labels_per_client"):
            label_k_partition(balanced_labels(100, 5), 4, labels_per_client=6, rng=rng)


class TestClientData:
    def make_federation(self, **kwargs):
        train, test = load_dataset("mnist", 400, 100, seed=0)
        defaults = dict(num_clients=8, shards_per_client=2, val_fraction=0.1, seed=0)
        defaults.update(kwargs)
        return build_client_data(train, test, **defaults), train, test

    def test_every_client_has_data(self):
        clients, *_ = self.make_federation()
        for client in clients:
            assert len(client.train) > 0
            assert len(client.val) > 0
            assert len(client.test) > 0

    def test_test_view_matches_owned_labels(self):
        clients, _, test = self.make_federation()
        for client in clients:
            test_labels = set(np.unique(client.test.labels).tolist())
            owned = set(client.labels.tolist())
            assert test_labels == {
                label for label in owned if label in set(test.labels.tolist())
            }

    def test_test_view_is_complete(self):
        """Each client's test view holds ALL test examples of its labels."""
        clients, _, test = self.make_federation()
        client = clients[0]
        for label in client.labels:
            expected = int((test.labels == label).sum())
            actual = int((client.test.labels == label).sum())
            assert actual == expected

    def test_label_distribution_table(self):
        clients, train, _ = self.make_federation()
        table = label_distribution(clients, num_classes=10)
        assert table.shape == (8, 10)
        # Total examples across clients equals what was partitioned out.
        total = sum(len(c.train) + len(c.val) for c in clients)
        assert table.sum() == sum(len(c.train) for c in clients)
        assert total <= len(train)

    def test_dirichlet_mode(self):
        clients, *_ = self.make_federation(partition="dirichlet")
        assert len(clients) == 8

    def test_unknown_partition_raises(self):
        train, test = load_dataset("mnist", 200, 50, seed=0)
        with pytest.raises(KeyError, match="unknown partition strategy"):
            build_client_data(train, test, num_clients=4, partition="bogus")

    def test_data_config_object_accepted(self):
        train, test = load_dataset("mnist", 200, 50, seed=0)
        config = DataConfig(partition="dirichlet", dirichlet_alpha=1.0)
        clients = build_client_data(train, test, num_clients=4, config=config, seed=0)
        assert len(clients) == 4

    def test_legacy_positional_shards_arg_rejected_clearly(self):
        """The old 4th positional (shards_per_client) gets a clear error,
        not a late AttributeError on an int."""
        train, test = load_dataset("mnist", 200, 50, seed=0)
        with pytest.raises(TypeError, match="keyword-only"):
            build_client_data(train, test, 4, 2)


class TestLabelOverlap:
    def test_jaccard_values(self):
        clients, *_ = TestClientData().make_federation()
        a, b = clients[0], clients[1]
        overlap = label_overlap(a, b)
        assert 0.0 <= overlap <= 1.0
        assert label_overlap(a, a) == 1.0

    def test_label_test_view_empty_owned(self):
        _, test = load_dataset("mnist", 100, 50, seed=0)
        view = label_test_view(test, [])
        assert len(view) == 0
