"""Heterogeneity quantification (Zhao et al. 2018-style EMD)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    build_client_data,
    heterogeneity_index,
    label_emd,
    label_histogram,
    load_dataset,
)


class TestLabelHistogram:
    def test_normalized(self):
        histogram = label_histogram(np.array([0, 0, 1, 2]), num_classes=4)
        np.testing.assert_allclose(histogram, [0.5, 0.25, 0.25, 0.0])

    def test_empty(self):
        histogram = label_histogram(np.array([], dtype=int), num_classes=3)
        np.testing.assert_array_equal(histogram, np.zeros(3))


class TestLabelEmd:
    def test_identical_is_zero(self):
        p = np.array([0.5, 0.5])
        assert label_emd(p, p) == 0.0

    def test_disjoint_is_one(self):
        assert label_emd(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_symmetric(self, rng):
        p = rng.dirichlet(np.ones(5))
        q = rng.dirichlet(np.ones(5))
        assert label_emd(p, q) == pytest.approx(label_emd(q, p))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            label_emd(np.ones(2) / 2, np.ones(3) / 3)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_bounded(self, seed):
        rng = np.random.default_rng(seed)
        p = rng.dirichlet(np.ones(6))
        q = rng.dirichlet(np.ones(6))
        assert 0.0 <= label_emd(p, q) <= 1.0


class TestHeterogeneityIndex:
    def make_clients(self, partition, alpha=0.5):
        train, test = load_dataset("mnist", 400, 100, seed=0)
        return build_client_data(
            train, test, num_clients=8, partition=partition,
            dirichlet_alpha=alpha, seed=0,
        )

    def test_shard_partition_is_pathological(self):
        clients = self.make_clients("shard")
        index = heterogeneity_index(clients, num_classes=10)
        # ~2 labels per client => EMD near 1 - 2/10 = 0.8.
        assert index["mean_emd"] > 0.6
        assert index["mean_labels_per_client"] <= 3.5

    def test_high_alpha_dirichlet_is_milder(self):
        pathological = heterogeneity_index(self.make_clients("shard"), 10)
        mild = heterogeneity_index(
            self.make_clients("dirichlet", alpha=100.0), 10
        )
        assert mild["mean_emd"] < pathological["mean_emd"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heterogeneity_index([], 10)
