"""Dataset and partitioner registries: the scenario plugin surface."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    SPECS,
    DataConfig,
    available_datasets,
    available_partitioners,
    build_client_data,
    dataset_entries,
    get_dataset,
    get_partitioner,
    load_dataset,
    partitioner_specs,
    register_dataset,
    register_partitioner,
    unregister_dataset,
    unregister_partitioner,
)
from repro.data.synthetic import DatasetSpec


class TestDatasetRegistry:
    def test_builtins_registered_in_order(self):
        assert available_datasets()[:4] == ("mnist", "emnist", "cifar10", "cifar100")

    def test_specs_is_live_view(self):
        """SPECS reflects registrations made after it was imported."""
        spec = DatasetSpec("live-view", (1, 6, 6), 2, signal=1.0, noise=1.0, max_shift=0)
        assert "live-view" not in SPECS
        register_dataset(spec)(lambda s, n_train, n_test, seed: None)
        try:
            assert "live-view" in SPECS
            assert SPECS["live-view"].num_classes == 2
            assert "live-view" in tuple(SPECS)
        finally:
            unregister_dataset("live-view")
        assert "live-view" not in SPECS

    def test_get_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_dataset("imagenet")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_dataset(
                DatasetSpec("mnist", (1, 28, 28), 10, signal=1.0, noise=1.0, max_shift=0)
            )(lambda *a: None)

    def test_entries_carry_summaries(self):
        assert all(entry.summary for entry in dataset_entries())

    def test_registered_loader_is_dispatched(self):
        spec = DatasetSpec("four-blobs", (1, 4, 4), 4, signal=1.0, noise=1.0, max_shift=0)

        @register_dataset(spec, summary="four gaussian blobs")
        def load_blobs(spec, n_train, n_test, seed):
            rng = np.random.default_rng(seed)

            def split(count):
                labels = np.arange(count) % spec.num_classes
                images = rng.normal(size=(count, *spec.shape)) + labels[:, None, None, None]
                return ArrayDataset(images, labels)

            return split(n_train), split(n_test)

        try:
            train, test = load_dataset("four-blobs", 40, 12, seed=3)
            assert len(train) == 40 and len(test) == 12
            assert set(np.unique(train.labels)) == set(range(4))
        finally:
            unregister_dataset("four-blobs")


class TestPartitionerRegistry:
    def test_builtins_registered(self):
        names = available_partitioners()
        for expected in ("shard", "dirichlet", "iid", "quantity-skew", "label-k"):
            assert expected in names

    def test_get_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown partition strategy"):
            get_partitioner("bogus")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_partitioner("shard")(lambda labels, num_clients, rng=None: [])

    def test_params_map_to_config_fields(self):
        spec = get_partitioner("dirichlet")
        kwargs = spec.kwargs_from(DataConfig(dirichlet_alpha=0.25, min_size=3))
        assert kwargs == {"alpha": 0.25, "min_size": 3, "max_attempts": 100}

    def test_params_missing_from_config_are_skipped(self):
        """Third-party params without a config field fall back to fn defaults."""

        @register_partitioner("halves", params=("no_such_field",))
        def halves(labels, num_clients, rng=None, no_such_field=7):
            order = np.arange(len(labels))
            return [np.asarray(c) for c in np.array_split(order, num_clients)]

        try:
            spec = get_partitioner("halves")
            assert spec.kwargs_from(DataConfig()) == {}
        finally:
            unregister_partitioner("halves")

    def test_summaries_populated(self):
        assert all(spec.summary for spec in partitioner_specs())


class TestThirdPartyScenario:
    """Acceptance: a full scenario registers via decorators only."""

    def test_full_scenario_runs_through_federation(self):
        """Dataset + partitioner + availability sampler, zero core edits."""
        from repro.federated import (
            Federation,
            FederationConfig,
            LocalTrainConfig,
            ScenarioConfig,
        )

        spec = DatasetSpec("two-bands", (1, 5, 5), 2, signal=2.0, noise=0.5, max_shift=0)

        @register_dataset(spec, summary="two horizontal bands")
        def load_bands(spec, n_train, n_test, seed):
            rng = np.random.default_rng(seed)

            def split(count):
                labels = (np.arange(count) % 2).astype(np.int64)
                images = rng.normal(scale=spec.noise, size=(count, *spec.shape))
                images[labels == 0, 0, 0, :] += spec.signal
                images[labels == 1, 0, 3, :] += spec.signal
                return ArrayDataset(images, labels)

            return split(n_train), split(n_test)

        @register_partitioner("alternating", summary="even/odd index deal")
        def alternating(labels, num_clients, rng=None):
            return [
                np.arange(client, len(labels), num_clients, dtype=np.int64)
                for client in range(num_clients)
            ]

        try:
            config = FederationConfig(
                dataset="two-bands",
                algorithm="fedavg",
                num_clients=3,
                rounds=2,
                sample_fraction=1.0,
                n_train=60,
                n_test=30,
                seed=0,
                local=LocalTrainConfig(epochs=1, batch_size=10),
                partition="alternating",
                scenario=ScenarioConfig(
                    sampler="availability", participation=0.9, dropout=0.1
                ),
            )
            history = Federation.from_config(config).run()
            assert history.final_accuracy is not None
            assert len(history.rounds) == 2
            # The config round-trips with the third-party names embedded.
            restored = FederationConfig.from_json(config.to_json())
            assert restored == config
        finally:
            unregister_dataset("two-bands")
            unregister_partitioner("alternating")

    def test_custom_partitioner_drives_build_client_data(self):
        @register_partitioner("round-robin", summary="deal indices in turn")
        def round_robin(labels, num_clients, rng=None):
            return [
                np.arange(client, len(labels), num_clients, dtype=np.int64)
                for client in range(num_clients)
            ]

        try:
            train, test = load_dataset("mnist", 120, 40, seed=0)
            clients = build_client_data(
                train, test, num_clients=4, partition="round-robin", seed=0
            )
            assert len(clients) == 4
            # Round-robin is an even deal: every client holds a quarter.
            assert all(
                len(c.train) + len(c.val) == 30 for c in clients
            )
        finally:
            unregister_partitioner("round-robin")
