"""Augmentation transforms and the augmented dataset view."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    AugmentedDataset,
    Compose,
    DataLoader,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
)


def images_of(count=8, channels=3, side=8, rng=None):
    rng = rng or np.random.default_rng(0)
    return rng.normal(size=(count, channels, side, side))


class TestRandomHorizontalFlip:
    def test_prob_one_flips_everything(self, rng):
        images = images_of(rng=rng)
        flipped = RandomHorizontalFlip(1.0)(images, rng)
        np.testing.assert_array_equal(flipped, images[:, :, :, ::-1])

    def test_prob_zero_identity(self, rng):
        images = images_of(rng=rng)
        out = RandomHorizontalFlip(0.0)(images, rng)
        np.testing.assert_array_equal(out, images)

    def test_does_not_mutate_input(self, rng):
        images = images_of(rng=rng)
        before = images.copy()
        RandomHorizontalFlip(1.0)(images, rng)
        np.testing.assert_array_equal(images, before)

    def test_invalid_prob(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(1.5)


class TestRandomCrop:
    def test_preserves_shape(self, rng):
        images = images_of(rng=rng)
        out = RandomCrop(2)(images, rng)
        assert out.shape == images.shape

    def test_content_is_a_shifted_window(self, rng):
        """Every output is the input translated by at most `padding` pixels."""
        images = np.zeros((1, 1, 6, 6))
        images[0, 0, 3, 3] = 1.0  # single hot pixel
        out = RandomCrop(2)(images, rng)
        ys, xs = np.nonzero(out[0, 0])
        if len(ys):  # the pixel may be cropped out entirely
            assert abs(int(ys[0]) - 3) <= 2
            assert abs(int(xs[0]) - 3) <= 2

    def test_invalid_padding(self):
        with pytest.raises(ValueError):
            RandomCrop(0)


class TestNoiseAndNormalize:
    def test_noise_changes_values(self, rng):
        images = images_of(rng=rng)
        out = GaussianNoise(0.5)(images, rng)
        assert not np.allclose(out, images)

    def test_zero_noise_identity(self, rng):
        images = images_of(rng=rng)
        assert GaussianNoise(0.0)(images, rng) is images

    def test_normalize(self, rng):
        images = images_of(channels=2, rng=rng)
        out = Normalize(mean=[1.0, -1.0], std=[2.0, 4.0])(images, rng)
        np.testing.assert_allclose(out[:, 0], (images[:, 0] - 1.0) / 2.0)
        np.testing.assert_allclose(out[:, 1], (images[:, 1] + 1.0) / 4.0)

    def test_zero_std_rejected(self):
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])


class TestCompose:
    def test_order(self, rng):
        images = images_of(channels=1, rng=rng)
        pipeline = Compose([Normalize([0.0], [2.0]), Normalize([0.0], [2.0])])
        out = pipeline(images, rng)
        np.testing.assert_allclose(out, images / 4.0)


class TestAugmentedDataset:
    def make(self, rng):
        base = ArrayDataset(images_of(count=12, rng=rng), np.arange(12) % 3)
        return base, AugmentedDataset(base, RandomHorizontalFlip(0.5), seed=7)

    def test_len_and_labels_passthrough(self, rng):
        base, augmented = self.make(rng)
        assert len(augmented) == len(base)
        np.testing.assert_array_equal(augmented.labels, base.labels)

    def test_batch_applies_transform(self, rng):
        base, _ = self.make(rng)
        augmented = AugmentedDataset(base, RandomHorizontalFlip(1.0), seed=7)
        images, _ = augmented.batch([0, 1])
        np.testing.assert_array_equal(images, base.images[[0, 1]][:, :, :, ::-1])

    def test_augmentation_varies_across_accesses(self, rng):
        base, _ = self.make(rng)
        augmented = AugmentedDataset(base, GaussianNoise(0.5), seed=7)
        first, _ = augmented.batch([0])
        second, _ = augmented.batch([0])
        assert not np.allclose(first, second)

    def test_works_with_dataloader(self, rng):
        _, augmented = self.make(rng)
        loader = DataLoader(augmented, batch_size=4, seed=0)
        batches = list(loader)
        assert sum(len(labels) for _, labels in batches) == 12
