"""Synthetic dataset generators: shapes, determinism, learnability."""

import numpy as np
import pytest

from repro.data import SPECS, class_templates, generate_split, load_dataset
from repro.data.synthetic import DatasetSpec


class TestSpecs:
    def test_all_families_present(self):
        assert set(SPECS) == {"mnist", "emnist", "cifar10", "cifar100"}

    @pytest.mark.parametrize(
        "name,shape,classes",
        [
            ("mnist", (1, 28, 28), 10),
            ("emnist", (1, 28, 28), 26),
            ("cifar10", (3, 32, 32), 10),
            ("cifar100", (3, 32, 32), 100),
        ],
    )
    def test_shapes_and_classes(self, name, shape, classes):
        spec = SPECS[name]
        assert spec.shape == shape
        assert spec.num_classes == classes

    def test_difficulty_ordering(self):
        """Signal-to-noise should decrease from MNIST to CIFAR-100."""
        snr = {name: spec.signal / spec.noise for name, spec in SPECS.items()}
        assert snr["mnist"] >= snr["cifar10"] >= snr["cifar100"]


class TestTemplates:
    def test_deterministic(self):
        a = class_templates(SPECS["mnist"], seed=5)
        b = class_templates(SPECS["mnist"], seed=5)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_templates(self):
        a = class_templates(SPECS["mnist"], seed=5)
        b = class_templates(SPECS["mnist"], seed=6)
        assert not np.allclose(a, b)

    def test_unit_rms(self):
        templates = class_templates(SPECS["cifar10"], seed=0)
        rms = np.sqrt((templates ** 2).mean(axis=(1, 2, 3)))
        np.testing.assert_allclose(rms, 1.0, atol=1e-10)

    def test_classes_distinct(self):
        templates = class_templates(SPECS["mnist"], seed=0)
        flattened = templates.reshape(len(templates), -1)
        gram = flattened @ flattened.T
        norm = np.sqrt(np.outer(np.diag(gram), np.diag(gram)))
        cosine = gram / norm
        off_diagonal = cosine[~np.eye(len(cosine), dtype=bool)]
        assert np.abs(off_diagonal).max() < 0.9


class TestGeneration:
    def test_balanced_labels(self):
        dataset = generate_split(SPECS["mnist"], 100, seed=0, split="train")
        _, counts = np.unique(dataset.labels, return_counts=True)
        assert counts.min() == counts.max() == 10

    def test_remainder_distributed(self):
        dataset = generate_split(SPECS["mnist"], 103, seed=0, split="train")
        _, counts = np.unique(dataset.labels, return_counts=True)
        assert counts.sum() == 103
        assert counts.max() - counts.min() <= 1

    def test_train_test_differ(self):
        train, test = load_dataset("mnist", 50, 50, seed=0)
        assert not np.allclose(train.images[:10], test.images[:10])

    def test_deterministic_given_seed(self):
        a, _ = load_dataset("cifar10", 40, 10, seed=3)
        b, _ = load_dataset("cifar10", 40, 10, seed=3)
        np.testing.assert_array_equal(a.images, b.images)

    def test_standardized(self):
        dataset = generate_split(SPECS["cifar10"], 200, seed=0, split="train")
        assert abs(dataset.images.mean()) < 1e-6
        assert abs(dataset.images.std() - 1.0) < 1e-6

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet", 10, 10)

    def test_nonpositive_count_raises(self):
        with pytest.raises(ValueError):
            generate_split(SPECS["mnist"], 0, seed=0, split="train")


class TestLearnability:
    """The phenomena the paper needs: classes are separable from few shots."""

    def test_nearest_template_beats_chance(self):
        spec = SPECS["mnist"]
        templates = class_templates(spec, seed=0).reshape(spec.num_classes, -1)
        dataset = generate_split(spec, 200, seed=0, split="test")
        flat = dataset.images.reshape(len(dataset), -1)
        scores = flat @ templates.T
        predictions = scores.argmax(axis=1)
        accuracy = (predictions == dataset.labels).mean()
        assert accuracy > 0.5  # chance = 0.1

    def test_cifar100_is_harder_than_mnist(self):
        accuracies = {}
        for name in ("mnist", "cifar100"):
            spec = SPECS[name]
            templates = class_templates(spec, seed=0).reshape(spec.num_classes, -1)
            dataset = generate_split(spec, 300, seed=0, split="test")
            flat = dataset.images.reshape(len(dataset), -1)
            predictions = (flat @ templates.T).argmax(axis=1)
            accuracies[name] = (predictions == dataset.labels).mean()
        assert accuracies["mnist"] > accuracies["cifar100"]
