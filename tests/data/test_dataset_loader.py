"""Dataset containers and the batch loader."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, Subset, full_batch, train_val_split


def make_dataset(count=20, classes=4, rng=None):
    rng = rng or np.random.default_rng(0)
    images = rng.normal(size=(count, 1, 4, 4))
    labels = np.arange(count) % classes
    return ArrayDataset(images, labels)


class TestArrayDataset:
    def test_len_and_getitem(self):
        dataset = make_dataset(10)
        assert len(dataset) == 10
        image, label = dataset[3]
        assert image.shape == (1, 4, 4)
        assert label == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4))

    def test_non_4d_raises(self):
        with pytest.raises(ValueError, match="N, C, H, W"):
            ArrayDataset(np.zeros((3, 4)), np.zeros(3))

    def test_num_classes(self):
        assert make_dataset(12, classes=4).num_classes == 4

    def test_batch_gather(self):
        dataset = make_dataset(10)
        images, labels = dataset.batch([0, 5, 9])
        assert images.shape == (3, 1, 4, 4)
        np.testing.assert_array_equal(labels, [0, 1, 1])


class TestSubset:
    def test_view_semantics(self):
        dataset = make_dataset(10)
        subset = Subset(dataset, [2, 4, 6])
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.labels, [2, 0, 2])

    def test_nested_subset_batch(self):
        dataset = make_dataset(10)
        inner = Subset(dataset, [1, 3, 5, 7])
        outer = Subset(inner, [0, 2])
        images, labels = outer.batch([0, 1])
        np.testing.assert_array_equal(labels, [1, 1])
        np.testing.assert_array_equal(images, dataset.images[[1, 5]])


class TestTrainValSplit:
    def test_sizes_and_disjoint(self, rng):
        dataset = make_dataset(20)
        train, val = train_val_split(dataset, 0.25, rng)
        assert len(train) == 15 and len(val) == 5
        assert not set(train.indices) & set(val.indices)

    def test_zero_fraction(self, rng):
        train, val = train_val_split(make_dataset(10), 0.0, rng)
        assert len(val) == 0 and len(train) == 10

    def test_small_dataset_gets_nonempty_val(self, rng):
        train, val = train_val_split(make_dataset(4), 0.05, rng)
        assert len(val) == 1

    def test_invalid_fraction_raises(self, rng):
        with pytest.raises(ValueError):
            train_val_split(make_dataset(4), 1.0, rng)


class TestDataLoader:
    def test_batch_count(self):
        loader = DataLoader(make_dataset(10), batch_size=3, shuffle=False)
        assert len(loader) == 4
        batches = list(loader)
        assert [len(b[1]) for b in batches] == [3, 3, 3, 1]

    def test_drop_last(self):
        loader = DataLoader(make_dataset(10), batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert all(len(labels) == 3 for _, labels in loader)

    def test_covers_every_example_once(self):
        dataset = make_dataset(17)
        loader = DataLoader(dataset, batch_size=5, seed=3)
        seen = np.concatenate([labels for _, labels in loader])
        assert len(seen) == 17

    def test_shuffle_differs_across_epochs(self):
        dataset = make_dataset(32)
        loader = DataLoader(dataset, batch_size=32, seed=0)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_seeded_loaders_agree(self):
        dataset = make_dataset(16)
        a = [labels for _, labels in DataLoader(dataset, batch_size=4, seed=9)]
        b = [labels for _, labels in DataLoader(dataset, batch_size=4, seed=9)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_no_shuffle_is_sequential(self):
        loader = DataLoader(make_dataset(6), batch_size=2, shuffle=False)
        labels = np.concatenate([y for _, y in loader])
        np.testing.assert_array_equal(labels, np.arange(6) % 4)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(4), batch_size=0)

    def test_full_batch(self):
        dataset = make_dataset(7)
        images, labels = full_batch(dataset)
        assert images.shape == (7, 1, 4, 4)
        assert len(labels) == 7
