"""Reductions, reshaping, indexing, concat/stack: values and gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, concat, ones, stack, zeros


class TestReductions:
    def test_sum_all(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.sum(axis=0).sum(), [a])
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_sum_negative_axis(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: a.sum(axis=-1).sum(), [a])

    def test_sum_tuple_axis(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        check_gradients(lambda: a.sum(axis=(0, 2)).sum(), [a])

    def test_mean_value_and_grad(self, rng):
        a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        np.testing.assert_allclose(a.mean().item(), a.data.mean())
        check_gradients(lambda: a.mean(), [a])

    def test_mean_axis_count(self, rng):
        a = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        np.testing.assert_allclose(a.mean(axis=1).data, a.data.mean(axis=1))
        check_gradients(lambda: a.mean(axis=1).sum(), [a])

    def test_var_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(6, 3)))
        np.testing.assert_allclose(a.var(axis=0).data, a.data.var(axis=0), atol=1e-12)

    def test_max_grad_routes_to_argmax(self):
        a = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_tie_splits_gradient(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])

    def test_max_axis(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        np.testing.assert_allclose(a.max(axis=1).data, a.data.max(axis=1))


class TestShapes:
    def test_reshape_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        check_gradients(lambda: a.reshape(3, 4).sum(), [a])

    def test_reshape_tuple_arg(self, rng):
        a = Tensor(rng.normal(size=(2, 6)))
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_flatten_batch(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        out = a.flatten_batch()
        assert out.shape == (2, 48)
        check_gradients(lambda: a.flatten_batch().sum(), [a])

    def test_transpose_default_reverses(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)))
        assert a.transpose().shape == (4, 3, 2)

    def test_transpose_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (a.transpose() * 2).sum(), [a])

    def test_getitem_grad_scatter(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        a[1].backward(np.array(1.0).reshape(()))
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_getitem_slice(self, rng):
        a = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        check_gradients(lambda: a[1:4].sum(), [a])

    def test_pad2d_roundtrip(self, rng):
        a = Tensor(rng.normal(size=(1, 1, 3, 3)), requires_grad=True)
        padded = a.pad2d(2)
        assert padded.shape == (1, 1, 7, 7)
        check_gradients(lambda: a.pad2d(2).sum(), [a])

    def test_pad2d_zero_is_identity(self):
        a = Tensor(np.ones((1, 1, 2, 2)))
        assert a.pad2d(0) is a


class TestConcatStack:
    def test_concat_values(self):
        out = concat([Tensor([1.0]), Tensor([2.0, 3.0])])
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])

    def test_concat_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda: concat([a, b], axis=0).sum(), [a, b])

    def test_concat_axis1_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 1)), requires_grad=True)
        check_gradients(lambda: concat([a, b], axis=1).sum(), [a, b])

    def test_stack_grad(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = stack([a, b])
        assert out.shape == (2, 3)
        check_gradients(lambda: stack([a, b]).sum(), [a, b])

    def test_zeros_ones(self):
        assert zeros((2, 2)).data.sum() == 0.0
        assert ones((2, 2)).data.sum() == 4.0
