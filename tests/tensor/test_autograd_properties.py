"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, check_gradients

SMALL_FLOATS = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)


def arrays(max_side=4, min_dims=1, max_dims=3):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(
            min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=max_side
        ),
        elements=SMALL_FLOATS,
    )


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_add_gradient_is_ones(data):
    a = Tensor(data, requires_grad=True)
    (a + 1.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(data))


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_mul_gradient_is_other_operand(data):
    a = Tensor(data, requires_grad=True)
    b = Tensor(np.full_like(data, 2.5))
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, np.full_like(data, 2.5))

@settings(max_examples=25, deadline=None)
@given(arrays(max_side=3, max_dims=2))
def test_sum_then_backward_matches_gradcheck(data):
    a = Tensor(data + 0.1, requires_grad=True)  # shift away from relu kink
    check_gradients(lambda: (a.relu() * a).sum(), [a], atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_reshape_preserves_gradient_mass(data):
    a = Tensor(data, requires_grad=True)
    a.reshape(-1).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(data))


@settings(max_examples=30, deadline=None)
@given(arrays(min_dims=2, max_dims=2))
def test_transpose_involution(data):
    a = Tensor(data)
    np.testing.assert_array_equal(a.transpose().transpose().data, data)


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_exp_log_softplus_positive(data):
    a = Tensor(data)
    assert (a.exp().data > 0).all()


@settings(max_examples=30, deadline=None)
@given(arrays(min_dims=2, max_dims=2), st.integers(min_value=0, max_value=1))
def test_sum_axis_equals_numpy(data, axis):
    a = Tensor(data)
    np.testing.assert_allclose(a.sum(axis=axis).data, data.sum(axis=axis), atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(arrays(min_dims=1, max_dims=1))
def test_chain_rule_scaling(data):
    """d/dx of (c * x).sum() is c for any constant c."""
    a = Tensor(data, requires_grad=True)
    (a * 3.0 + a * -1.5).sum().backward()
    np.testing.assert_allclose(a.grad, np.full_like(data, 1.5))
