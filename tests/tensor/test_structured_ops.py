"""Convolution, pooling, batch norm, softmax/loss: references and gradients."""

import numpy as np
import pytest
from scipy import signal

from repro.tensor import (
    Tensor,
    batch_norm,
    check_gradients,
    col2im,
    conv2d,
    cross_entropy,
    dropout,
    im2col,
    log_softmax,
    max_pool2d,
    nll_loss,
    softmax,
)


def reference_conv(x, w, b, stride=1, padding=0):
    """Direct cross-correlation via scipy, for value verification."""
    n, c_in, h, w_in = x.shape
    f = w.shape[0]
    k = w.shape[2]
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - k) // stride + 1
    out_w = (x.shape[3] - k) // stride + 1
    out = np.zeros((n, f, out_h, out_w))
    for i in range(n):
        for j in range(f):
            acc = np.zeros((x.shape[2] - k + 1, x.shape[3] - k + 1))
            for ch in range(c_in):
                acc += signal.correlate2d(x[i, ch], w[j, ch], mode="valid")
            out[i, j] = acc[::stride, ::stride]
    if b is not None:
        out += b.reshape(1, -1, 1, 1)
    return out


class TestConv2d:
    def test_value_matches_scipy(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, reference_conv(x, w, b), atol=1e-10)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 2)])
    def test_value_stride_padding(self, rng, stride, padding):
        x = rng.normal(size=(1, 2, 7, 7))
        w = rng.normal(size=(3, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), None, stride=stride, padding=padding)
        np.testing.assert_allclose(
            out.data, reference_conv(x, w, None, stride, padding), atol=1e-10
        )

    def test_gradcheck_all_inputs(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        check_gradients(lambda: conv2d(x, w, b).sum(), [x, w, b])

    def test_gradcheck_stride2_padded(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 1, 3, 3)), requires_grad=True)
        check_gradients(lambda: conv2d(x, w, None, stride=2, padding=1).sum(), [x, w])

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError, match="channels"):
            conv2d(x, w, None)

    def test_kernel_too_large_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 2, 2)))
        w = Tensor(rng.normal(size=(1, 1, 5, 5)))
        with pytest.raises(ValueError, match="non-positive"):
            conv2d(x, w, None)

    def test_im2col_col2im_are_adjoint(self, rng):
        """col2im(im2col(x)) multiplies each pixel by its window count."""
        x = rng.normal(size=(1, 1, 4, 4))
        cols = im2col(x, 2, 2, 1, 3, 3)
        back = col2im(cols, x.shape, 2, 2, 1, 3, 3)
        counts = col2im(np.ones_like(cols), x.shape, 2, 2, 1, 3, 3)
        np.testing.assert_allclose(back, x * counts)


class TestMaxPool:
    def test_value(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[5.0, 7.0], [13.0, 15.0]]]])

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        check_gradients(lambda: max_pool2d(x, 2).sum(), [x])

    def test_gradcheck_kernel3_stride1_overlapping(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)), requires_grad=True)
        check_gradients(lambda: max_pool2d(x, 3, stride=1).sum(), [x])

    def test_grad_routes_to_max_only(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, [[[[0, 0], [0, 1.0]]]])


class TestBatchNorm:
    def _bn_args(self, channels):
        gamma = Tensor(np.ones(channels), requires_grad=True)
        beta = Tensor(np.zeros(channels), requires_grad=True)
        return gamma, beta, np.zeros(channels), np.ones(channels)

    def test_training_normalizes(self, rng):
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5)))
        gamma, beta, mean, var = self._bn_args(4)
        out = batch_norm(x, gamma, beta, mean, var, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated(self, rng):
        x = Tensor(rng.normal(loc=5.0, size=(16, 2, 4, 4)))
        gamma, beta, mean, var = self._bn_args(2)
        batch_norm(x, gamma, beta, mean, var, training=True, momentum=1.0)
        np.testing.assert_allclose(mean, x.data.mean(axis=(0, 2, 3)))

    def test_eval_uses_running_stats(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3, 3)))
        gamma, beta, _, _ = self._bn_args(2)
        running_mean = np.array([1.0, -1.0])
        running_var = np.array([4.0, 9.0])
        out = batch_norm(x, gamma, beta, running_mean, running_var, training=False)
        expected = (x.data - running_mean.reshape(1, 2, 1, 1)) / np.sqrt(
            running_var.reshape(1, 2, 1, 1) + 1e-5
        )
        np.testing.assert_allclose(out.data, expected)

    def test_gradcheck_training_mode(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        gamma = Tensor(rng.uniform(0.5, 1.5, size=2), requires_grad=True)
        beta = Tensor(rng.normal(size=2), requires_grad=True)

        def f():
            return batch_norm(
                x, gamma, beta, np.zeros(2), np.ones(2), training=True
            ).sum()

        # sum() of normalized output is ~0 w.r.t. x; use a weighted sum instead.
        weights = rng.normal(size=(4, 2, 3, 3))

        def g():
            out = batch_norm(x, gamma, beta, np.zeros(2), np.ones(2), training=True)
            return (out * Tensor(weights)).sum()

        check_gradients(g, [x, gamma, beta], atol=1e-4)

    def test_gradcheck_eval_mode(self, rng):
        x = Tensor(rng.normal(size=(3, 2, 2, 2)), requires_grad=True)
        gamma = Tensor(rng.uniform(0.5, 1.5, size=2), requires_grad=True)
        beta = Tensor(rng.normal(size=2), requires_grad=True)
        running_mean, running_var = rng.normal(size=2), rng.uniform(0.5, 2.0, size=2)
        check_gradients(
            lambda: batch_norm(
                x, gamma, beta, running_mean, running_var, training=False
            ).sum(),
            [x, gamma, beta],
        )

    def test_2d_input(self, rng):
        x = Tensor(rng.normal(size=(10, 4)), requires_grad=True)
        gamma, beta, mean, var = self._bn_args(4)
        out = batch_norm(x, gamma, beta, mean, var, training=True)
        assert out.shape == (10, 4)

    def test_3d_input_rejected(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        gamma, beta, mean, var = self._bn_args(3)
        with pytest.raises(ValueError):
            batch_norm(x, gamma, beta, mean, var, training=True)

    def test_zero_gamma_silences_channel(self, rng):
        """The structured-pruning mechanism: gamma=beta=0 => channel output 0."""
        x = Tensor(rng.normal(size=(4, 3, 2, 2)))
        gamma = Tensor(np.array([1.0, 0.0, 1.0]))
        beta = Tensor(np.zeros(3))
        out = batch_norm(x, gamma, beta, np.zeros(3), np.ones(3), training=True)
        np.testing.assert_allclose(out.data[:, 1], 0.0)


class TestSoftmaxLosses:
    def test_log_softmax_normalizes(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        out = log_softmax(x)
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0)

    def test_log_softmax_shift_invariant(self, rng):
        x = rng.normal(size=(2, 4))
        a = log_softmax(Tensor(x)).data
        b = log_softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_log_softmax_grad(self, rng):
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        weights = rng.normal(size=(3, 5))
        check_gradients(lambda: (log_softmax(x) * Tensor(weights)).sum(), [x])

    def test_softmax_values(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        expected = np.exp(x.data) / np.exp(x.data).sum(axis=1, keepdims=True)
        np.testing.assert_allclose(softmax(x).data, expected, atol=1e-12)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 2, 1, 1])
        loss = cross_entropy(Tensor(logits), targets)
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        np.testing.assert_allclose(loss.item(), expected, atol=1e-9)

    def test_cross_entropy_grad(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, 2, 1, 1])
        check_gradients(lambda: cross_entropy(logits, targets), [logits])

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_nll_loss_uniform(self):
        log_probs = Tensor(np.log(np.full((2, 4), 0.25)))
        loss = nll_loss(log_probs, np.array([0, 3]))
        np.testing.assert_allclose(loss.item(), np.log(4.0))


class TestDropout:
    def test_identity_in_eval(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert dropout(x, 0.5, rng, training=False) is x

    def test_identity_at_zero_rate(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert dropout(x, 0.0, rng, training=True) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.5, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_grad_masked(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        out = dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        dropped = out.data == 0
        assert (x.grad[dropped] == 0).all()
