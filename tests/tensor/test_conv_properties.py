"""Mathematical properties of convolution, and whole-model gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import CNN5, LeNet5
from repro.tensor import Tensor, check_gradients, conv2d, cross_entropy


class TestConvLinearity:
    @settings(max_examples=15, deadline=None)
    @given(
        alpha=st.floats(min_value=-2.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_linear_in_input(self, alpha, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, 5, 5))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        scaled = conv2d(Tensor(alpha * x), w, None).data
        reference = alpha * conv2d(Tensor(x), w, None).data
        np.testing.assert_allclose(scaled, reference, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_additive_in_weights(self, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        w1 = rng.normal(size=(2, 1, 3, 3))
        w2 = rng.normal(size=(2, 1, 3, 3))
        combined = conv2d(x, Tensor(w1 + w2), None).data
        separate = conv2d(x, Tensor(w1), None).data + conv2d(x, Tensor(w2), None).data
        np.testing.assert_allclose(combined, separate, atol=1e-10)


class TestTranslationEquivariance:
    def test_valid_conv_commutes_with_shift(self, rng):
        """conv(shift(x)) == shift(conv(x)) in the interior (stride 1)."""
        x = rng.normal(size=(1, 1, 8, 8))
        w = Tensor(rng.normal(size=(1, 1, 3, 3)))
        shifted = np.roll(x, 1, axis=3)
        out = conv2d(Tensor(x), w, None).data
        out_shifted = conv2d(Tensor(shifted), w, None).data
        # Interior columns (skip the wrap-around boundary).
        np.testing.assert_allclose(out_shifted[..., 1:-1][..., 1:],
                                   np.roll(out, 1, axis=3)[..., 1:-1][..., 1:],
                                   atol=1e-10)


class TestWholeModelGradients:
    """End-to-end gradcheck through the paper architectures.

    Uses eval mode so batch-norm is a fixed affine map (training-mode BN is
    checked separately in the op tests); this verifies the composition of
    conv → BN → relu → pool → linear → cross-entropy.
    """

    @pytest.mark.parametrize(
        "model_cls,shape",
        [(CNN5, (2, 1, 28, 28)), (LeNet5, (2, 3, 32, 32))],
    )
    def test_model_gradcheck_subset(self, rng, model_cls, shape):
        model = model_cls(num_classes=3, rng=rng)
        model.eval()
        x = rng.normal(size=shape)
        targets = np.array([0, 2])

        # Checking all ~60k parameters is infeasible; check the conv1 bias
        # and the final layer's bias (gradients flow through everything).
        named = dict(model.named_parameters())
        checked = [named["conv1.bias"], named[model.classifier_names[-1] + ".bias"]]

        def loss():
            return cross_entropy(model(Tensor(x)), targets)

        check_gradients(loss, checked, atol=1e-5)
        # The conv kernel itself via seeded entry sampling — a full sweep
        # would be hundreds of forward pairs.
        check_gradients(loss, [named["conv1.weight"]], atol=1e-5, max_checks=8)

    def test_gradients_reach_every_parameter(self, rng):
        model = CNN5(num_classes=4, rng=rng)
        x = rng.normal(size=(3, 1, 28, 28))
        loss = cross_entropy(model(Tensor(x)), np.array([0, 1, 2]))
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"{name} got no gradient"
            assert np.abs(param.grad).sum() > 0 or "bn" in name, name
