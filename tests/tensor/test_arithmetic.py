"""Arithmetic ops: values, gradients and broadcasting."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, unbroadcast


class TestElementwise:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar_promotes(self):
        out = Tensor([1.0, 2.0]) + 5
        np.testing.assert_allclose(out.data, [6.0, 7.0])

    def test_radd(self):
        out = 5 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [6.0])

    def test_sub_and_rsub(self):
        a = Tensor([3.0])
        np.testing.assert_allclose((a - 1).data, [2.0])
        np.testing.assert_allclose((1 - a).data, [-2.0])

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_grad(self, rng):
        a = Tensor(rng.uniform(1, 2, size=(3, 4)), requires_grad=True)
        b = Tensor(rng.uniform(1, 2, size=(3, 4)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])

    def test_pow_grad(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=5), requires_grad=True)
        check_gradients(lambda: (a ** 3).sum(), [a])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        out = a * a  # a appears twice
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [4.0])

    def test_exp_log_roundtrip_grad(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: a.exp().log().sum(), [a])

    def test_tanh_sigmoid_relu_grads(self, rng):
        for fn in ("tanh", "sigmoid", "relu"):
            a = Tensor(rng.normal(size=(6,)) + 0.1, requires_grad=True)
            check_gradients(lambda a=a, fn=fn: getattr(a, fn)().sum(), [a])

    def test_abs_grad_away_from_zero(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])

    def test_sqrt(self):
        a = Tensor([4.0, 9.0])
        np.testing.assert_allclose(a.sqrt().data, [2.0, 3.0])


class TestBroadcasting:
    def test_add_broadcast_grad_shapes(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_broadcast_numeric(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_unbroadcast_sums_added_axes(self):
        grad = np.ones((4, 2, 3))
        out = unbroadcast(grad, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_unbroadcast_sums_size_one_axes(self):
        grad = np.ones((2, 3))
        out = unbroadcast(grad, (2, 1))
        np.testing.assert_allclose(out, np.full((2, 1), 3.0))

    def test_unbroadcast_noop_when_same_shape(self):
        grad = np.ones((2, 2))
        assert unbroadcast(grad, (2, 2)) is grad


class TestMatmul:
    def test_matmul_value(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_matmul_grad(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_batched_matmul_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestBackwardProtocol:
    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_on_non_scalar_needs_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_mismatched_grad_shape(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2
        with pytest.raises(ValueError):
            out.backward(np.ones((3,)))

    def test_diamond_graph_accumulation(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        c = a * 3
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_zero_grad_clears(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_detach_leaves_graph(self):
        a = Tensor([1.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data

    def test_item_and_len_and_repr(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        assert len(a) == 1
        assert "requires_grad=True" in repr(a)
        assert Tensor([3.5]).item() == 3.5
