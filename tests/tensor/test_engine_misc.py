"""Remaining engine surface: copies, dtype coercion, graph hygiene."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, numerical_gradient


class TestConstruction:
    def test_list_coerced_to_float64(self):
        tensor = Tensor([1, 2, 3])
        assert tensor.dtype == np.float64

    def test_float32_upcast(self):
        tensor = Tensor(np.zeros(3, dtype=np.float32))
        assert tensor.dtype == np.float64

    def test_ndarray_not_copied_when_dtype_matches(self):
        data = np.zeros(3)
        tensor = Tensor(data)
        assert tensor.data is data

    def test_copy_is_independent(self):
        tensor = Tensor([1.0], requires_grad=True)
        clone = tensor.copy()
        clone.data[0] = 9.0
        assert tensor.data[0] == 1.0
        assert clone.requires_grad

    def test_size_ndim_properties(self):
        tensor = Tensor(np.zeros((2, 3, 4)))
        assert tensor.size == 24
        assert tensor.ndim == 3


class TestGraphHygiene:
    def test_non_grad_branch_gets_no_gradient(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=False)
        (a * b).sum().backward()
        assert b.grad is None
        assert a.grad is not None

    def test_repeated_backward_accumulates(self):
        a = Tensor([1.0], requires_grad=True)
        out = (a * 3).sum()
        out.backward()
        out2 = (a * 3).sum()
        out2.backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_long_chain(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(200):
            out = out * 1.01
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.01 ** 200], rtol=1e-10)

    def test_shared_subexpression_counted_once_per_path(self):
        a = Tensor([2.0], requires_grad=True)
        shared = a * 3
        out = (shared + shared).sum()  # d/da = 6
        out.backward()
        np.testing.assert_allclose(a.grad, [6.0])


class TestNumericalGradient:
    def test_matches_analytic_for_quadratic(self):
        a = Tensor([1.5, -0.5], requires_grad=True)
        numeric = numerical_gradient(lambda: (a * a).sum(), a)
        np.testing.assert_allclose(numeric, 2 * a.data, atol=1e-6)

    def test_check_gradients_raises_on_wrong_grad(self):
        a = Tensor([1.0], requires_grad=True)

        class Liar:
            """An op whose backward is intentionally wrong."""

            def build(self):
                out = Tensor(a.data * 2, requires_grad=True, _parents=(a,))

                def bad_backward(grad):
                    a._accumulate(grad * 99.0)  # truth is 2.0

                out._backward = bad_backward
                return out.sum()

        with pytest.raises(AssertionError, match="gradient mismatch"):
            check_gradients(Liar().build, [a])
