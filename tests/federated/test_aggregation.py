"""Aggregation rules: FedAvg mean and the Sub-FedAvg intersection average."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.federated import fedavg_average, intersection_average, partial_average
from repro.pruning import MaskSet


def states_of(*vectors):
    return [{"w": np.asarray(vector, dtype=np.float64)} for vector in vectors]


class TestFedAvgAverage:
    def test_uniform_mean(self):
        out = fedavg_average(states_of([1.0, 2.0], [3.0, 4.0]))
        np.testing.assert_allclose(out["w"], [2.0, 3.0])

    def test_weighted_mean(self):
        out = fedavg_average(states_of([0.0], [10.0]), weights=[3, 1])
        np.testing.assert_allclose(out["w"], [2.5])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fedavg_average([])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            fedavg_average(states_of([1.0]), weights=[1, 2])

    def test_nonpositive_weights_raise(self):
        with pytest.raises(ValueError):
            fedavg_average(states_of([1.0], [2.0]), weights=[0, 0])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=5))
    def test_property_average_of_identical_is_identity(self, values):
        state = {"w": np.asarray(values)}
        out = fedavg_average([state, state, state])
        np.testing.assert_allclose(out["w"], state["w"], atol=1e-12)


class TestIntersectionAverage:
    def test_full_masks_equal_plain_mean(self):
        states = states_of([2.0, 4.0], [6.0, 8.0])
        masks = [MaskSet({"w": np.ones(2)}), MaskSet({"w": np.ones(2)})]
        previous = {"w": np.zeros(2)}
        out = intersection_average(states, masks, previous)
        np.testing.assert_allclose(out["w"], [4.0, 6.0])

    def test_coordinate_kept_by_one_passes_through(self):
        states = states_of([5.0, 1.0], [9.0, 3.0])
        masks = [
            MaskSet({"w": np.array([1, 1])}),
            MaskSet({"w": np.array([0, 1])}),
        ]
        previous = {"w": np.zeros(2)}
        out = intersection_average(states, masks, previous)
        np.testing.assert_allclose(out["w"], [5.0, 2.0])

    def test_unkept_coordinate_retains_global(self):
        states = states_of([5.0], [9.0])
        masks = [MaskSet({"w": np.array([0])}), MaskSet({"w": np.array([0])})]
        previous = {"w": np.array([42.0])}
        out = intersection_average(states, masks, previous)
        np.testing.assert_allclose(out["w"], [42.0])

    def test_none_mask_treated_dense(self):
        states = states_of([2.0], [4.0])
        out = intersection_average(states, [None, None], {"w": np.zeros(1)})
        np.testing.assert_allclose(out["w"], [3.0])

    def test_uncovered_tensor_plain_averaged(self):
        states = [
            {"w": np.array([2.0]), "b": np.array([1.0])},
            {"w": np.array([4.0]), "b": np.array([3.0])},
        ]
        masks = [MaskSet({"w": np.array([1])}), MaskSet({"w": np.array([1])})]
        previous = {"w": np.zeros(1), "b": np.zeros(1)}
        out = intersection_average(states, masks, previous)
        np.testing.assert_allclose(out["b"], [2.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            intersection_average(states_of([1.0]), [], {"w": np.zeros(1)})

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            intersection_average([], [], {"w": np.zeros(1)})

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.tuples(st.floats(-5, 5), st.integers(0, 1), st.floats(-5, 5), st.integers(0, 1)),
            min_size=1,
            max_size=8,
        )
    )
    def test_property_matches_manual_computation(self, values):
        v1 = np.array([row[0] for row in values])
        m1 = np.array([row[1] for row in values], dtype=float)
        v2 = np.array([row[2] for row in values])
        m2 = np.array([row[3] for row in values], dtype=float)
        previous = {"w": np.full(len(values), 7.0)}
        out = intersection_average(
            [{"w": v1}, {"w": v2}],
            [MaskSet({"w": m1}), MaskSet({"w": m2})],
            previous,
        )
        denominator = m1 + m2
        expected = np.where(
            denominator > 0,
            (v1 * m1 + v2 * m2) / np.where(denominator > 0, denominator, 1),
            7.0,
        )
        np.testing.assert_allclose(out["w"], expected, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=6))
    def test_property_reduces_to_fedavg_with_dense_masks(self, values):
        state1 = {"w": np.asarray(values)}
        state2 = {"w": np.asarray(values[::-1])}
        dense = MaskSet({"w": np.ones(len(values))})
        previous = {"w": np.zeros(len(values))}
        a = intersection_average([state1, state2], [dense, dense], previous)
        b = fedavg_average([state1, state2])
        np.testing.assert_allclose(a["w"], b["w"], atol=1e-12)


class TestPartialAverage:
    def test_only_named_tensors_averaged(self):
        states = [
            {"shared": np.array([2.0]), "personal": np.array([1.0])},
            {"shared": np.array([4.0]), "personal": np.array([9.0])},
        ]
        previous = {"shared": np.zeros(1), "personal": np.array([-1.0])}
        out = partial_average(states, ["shared"], previous)
        np.testing.assert_allclose(out["shared"], [3.0])
        np.testing.assert_allclose(out["personal"], [-1.0])
