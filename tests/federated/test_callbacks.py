"""Lifecycle callbacks: dispatch order, early stopping, built-ins."""

import io

import pytest

from repro.federated import (
    Callback,
    CallbackList,
    CheckpointCallback,
    EarlyStopping,
    EDGE_PHONE,
    Federation,
    FederationConfig,
    LocalTrainConfig,
    ProgressLogger,
    WallClockCallback,
    WallClockModel,
)


def tiny_federation(rounds=2, eval_every=0, algorithm="fedavg"):
    config = FederationConfig(
        dataset="mnist",
        algorithm=algorithm,
        num_clients=3,
        rounds=rounds,
        sample_fraction=1.0,
        n_train=120,
        n_test=60,
        seed=0,
        eval_every=eval_every,
        local=LocalTrainConfig(epochs=1, batch_size=10),
    )
    return Federation.from_config(config)


class Recorder(Callback):
    """Logs every hook invocation as (tag, hook, round_index_or_None)."""

    def __init__(self, tag, log):
        self.tag = tag
        self.log = log

    def on_run_start(self, trainer):
        self.log.append((self.tag, "on_run_start", None))

    def on_round_start(self, trainer, round_index, sampled):
        self.log.append((self.tag, "on_round_start", round_index))

    def on_evaluate(self, trainer, round_index, accuracy):
        self.log.append((self.tag, "on_evaluate", round_index))

    def on_round_end(self, trainer, round_index, record):
        self.log.append((self.tag, "on_round_end", round_index))

    def on_run_end(self, trainer, history):
        self.log.append((self.tag, "on_run_end", None))


class TestDispatchOrder:
    def test_lifecycle_sequence(self):
        log = []
        tiny_federation(rounds=2).run(callbacks=[Recorder("a", log)])
        assert [(hook, rnd) for _, hook, rnd in log] == [
            ("on_run_start", None),
            ("on_round_start", 1),
            ("on_round_end", 1),
            ("on_round_start", 2),
            ("on_round_end", 2),
            ("on_run_end", None),
        ]

    def test_custom_callback_observes_every_round(self):
        """Acceptance: a registered callback sees all rounds of a run."""
        log = []
        federation = tiny_federation(rounds=4)
        federation.run(callbacks=[Recorder("a", log)])
        seen = [rnd for _, hook, rnd in log if hook == "on_round_end"]
        assert seen == [1, 2, 3, 4]

    def test_on_evaluate_fires_with_eval_every(self):
        log = []
        tiny_federation(rounds=2, eval_every=1).run(callbacks=[Recorder("a", log)])
        hooks = [(hook, rnd) for _, hook, rnd in log]
        # evaluation happens between round start and round end, every round
        assert hooks.index(("on_evaluate", 1)) == hooks.index(("on_round_start", 1)) + 1
        assert ("on_evaluate", 2) in hooks

    def test_callbacks_invoked_in_list_order(self):
        log = []
        tiny_federation(rounds=1).run(
            callbacks=[Recorder("first", log), Recorder("second", log)]
        )
        per_hook = {}
        for tag, hook, _ in log:
            per_hook.setdefault(hook, []).append(tag)
        for tags in per_hook.values():
            assert tags == ["first", "second"]

    def test_duck_typed_partial_callback(self):
        class OnlyRoundEnd:
            def __init__(self):
                self.rounds = []

            def on_round_end(self, trainer, round_index, record):
                self.rounds.append(round_index)

        partial = OnlyRoundEnd()
        tiny_federation(rounds=2).run(callbacks=[partial])
        assert partial.rounds == [1, 2]

    def test_unknown_hook_rejected(self):
        with pytest.raises(ValueError, match="unknown callback hook"):
            CallbackList([]).dispatch("on_coffee_break")


class TestEarlyStopping:
    def test_halts_loop_with_truncated_consistent_history(self):
        federation = tiny_federation(rounds=10)
        # min_delta is impossible to beat, so patience expires immediately.
        stopper = EarlyStopping(monitor="train_loss", patience=2, min_delta=100.0)
        history = federation.run(callbacks=[stopper])
        assert stopper.stopped_round == 3  # round 1 sets best, 2-3 are stale
        assert len(history.rounds) == 3
        # Truncated but consistent: the final evaluation still ran.
        assert history.final_accuracy is not None
        assert len(history.final_per_client_accuracy) == 3

    def test_target_accuracy_stops_run(self):
        federation = tiny_federation(rounds=10, eval_every=1)
        stopper = EarlyStopping(monitor="mean_accuracy", target=0.0)
        history = federation.run(callbacks=[stopper])
        assert stopper.stopped_round == 1
        assert len(history.rounds) == 1

    def test_missing_metric_rounds_do_not_count(self):
        # mean_accuracy never measured (eval_every=0): must run to completion.
        federation = tiny_federation(rounds=3)
        stopper = EarlyStopping(monitor="mean_accuracy", patience=1)
        history = federation.run(callbacks=[stopper])
        assert stopper.stopped_round is None
        assert len(history.rounds) == 3

    def test_mode_auto_infers_direction(self):
        assert EarlyStopping(monitor="train_loss").mode == "min"
        assert EarlyStopping(monitor="mean_accuracy").mode == "max"

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(mode="sideways")

    def test_misspelled_monitor_rejected(self):
        with pytest.raises(ValueError, match="RoundRecord field"):
            EarlyStopping(monitor="mean_acc")

    def test_instance_reusable_across_runs(self):
        stopper = EarlyStopping(monitor="train_loss", patience=2, min_delta=100.0)
        first = tiny_federation(rounds=10).run(callbacks=[stopper])
        assert stopper.stopped_round == 3
        # A fresh run with the same instance must not inherit best/staleness.
        second = tiny_federation(rounds=10).run(callbacks=[stopper])
        assert len(second.rounds) == len(first.rounds)
        assert stopper.stopped_round == 3  # re-derived, not carried over


class TestBuiltins:
    def test_progress_logger_writes_stream(self):
        stream = io.StringIO()
        tiny_federation(rounds=2).run(callbacks=[ProgressLogger(stream=stream)])
        out = stream.getvalue()
        assert "round 1/2" in out
        assert "final personalized accuracy" in out

    def test_progress_logger_every(self):
        stream = io.StringIO()
        tiny_federation(rounds=2).run(callbacks=[ProgressLogger(every=2, stream=stream)])
        out = stream.getvalue()
        assert "round 1/2" not in out
        assert "round 2/2" in out

    def test_wall_clock_annotates_records(self):
        model = WallClockModel(
            [EDGE_PHONE], flops_per_example=1e6, examples_per_round=40
        )
        watcher = WallClockCallback(model)
        history = tiny_federation(rounds=2).run(callbacks=[watcher])
        assert len(watcher.round_seconds) == 2
        assert watcher.total_seconds == pytest.approx(sum(watcher.round_seconds))
        for record in history.rounds:
            assert record.wall_clock_seconds == model.round_seconds(record)

    def test_checkpoint_callback_resumes(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        first = tiny_federation(rounds=2)
        first.run(callbacks=[CheckpointCallback(path, every=1)])

        resumed = tiny_federation(rounds=4)
        log = []
        history = resumed.run(
            callbacks=[CheckpointCallback(path, every=1), Recorder("a", log)]
        )
        assert len(history.rounds) == 4
        # only rounds 3-4 executed live; 1-2 came from the checkpoint
        executed = [rnd for _, hook, rnd in log if hook == "on_round_start"]
        assert executed == [3, 4]

    def test_checkpoint_callback_invalid_every(self):
        with pytest.raises(ValueError):
            CheckpointCallback("x.pkl", every=0)

    def test_checkpoint_persists_early_stopped_round(self, tmp_path):
        """Early stop between boundaries must still be durable on resume."""
        from repro.federated import load_checkpoint

        path = tmp_path / "ckpt.pkl"
        federation = tiny_federation(rounds=10)
        stopper = EarlyStopping(monitor="train_loss", patience=2, min_delta=100.0)
        # Checkpoint boundary (every=10) is never reached before the stop;
        # the callback is listed first, so only the run-end backstop saves.
        history = federation.run(
            callbacks=[CheckpointCallback(path, every=10), stopper]
        )
        assert len(history.rounds) == 3
        fresh = tiny_federation(rounds=10)
        assert load_checkpoint(path, fresh.trainer) == 3
