"""Participation scenarios: the sampler registry and AvailabilitySampler."""

import numpy as np
import pytest

from repro.federated import (
    AvailabilitySampler,
    ClientSampler,
    Federation,
    FederationConfig,
    FixedSampler,
    LocalTrainConfig,
    ScenarioConfig,
    available_samplers,
    build_sampler,
    get_sampler,
    register_sampler,
    sampler_specs,
    unregister_sampler,
)
from repro.federated.simulation import EDGE_PHONE, RASPBERRY_PI, WallClockModel


class TestSamplerRegistry:
    def test_builtins_registered(self):
        assert available_samplers()[:3] == ("uniform", "fixed", "availability")

    def test_get_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown sampler"):
            get_sampler("bogus")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_sampler("uniform")(lambda *a: None)

    def test_summaries_populated(self):
        assert all(spec.summary for spec in sampler_specs())

    def test_uniform_factory_matches_paper_protocol(self):
        built = build_sampler(ScenarioConfig(), 50, 0.2, seed=3)
        reference = ClientSampler(50, 0.2, seed=3)
        assert isinstance(built, ClientSampler)
        assert built.sample() == reference.sample()

    def test_fixed_factory_uses_config_subset(self):
        scenario = ScenarioConfig(sampler="fixed", fixed_clients=(2, 0))
        sampler = build_sampler(scenario, 5, 0.5, seed=0)
        assert sampler.sample() == [0, 2]
        assert sampler.num_clients == 5

    def test_fixed_factory_defaults_to_all_clients(self):
        sampler = build_sampler(ScenarioConfig(sampler="fixed"), 4, 0.5, seed=0)
        assert sampler.sample() == [0, 1, 2, 3]

    def test_third_party_sampler_runs_end_to_end(self):
        """Acceptance: a custom participation model via the decorator only."""

        @register_sampler("first-client")
        def first_client(num_clients, sample_fraction, seed, scenario):
            return FixedSampler([0], num_clients=num_clients)

        try:
            config = FederationConfig(
                dataset="mnist", algorithm="fedavg", num_clients=3, rounds=2,
                sample_fraction=1.0, n_train=120, n_test=60,
                local=LocalTrainConfig(epochs=1, batch_size=10),
                scenario=ScenarioConfig(sampler="first-client"),
            )
            history = Federation.from_config(config).run()
            for record in history.rounds:
                assert record.sampled_clients == [0]
        finally:
            unregister_sampler("first-client")


class TestScenarioConfig:
    def test_defaults_are_uniform(self):
        assert ScenarioConfig().sampler == "uniform"

    def test_fixed_clients_list_coerced_to_tuple(self):
        scenario = ScenarioConfig(fixed_clients=[3, 1])
        assert scenario.fixed_clients == (3, 1)
        assert scenario == ScenarioConfig(fixed_clients=(3, 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(participation=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(participation_spread=-0.1)
        with pytest.raises(ValueError):
            ScenarioConfig(dropout=1.0)

    def test_unknown_sampler_rejected_at_config_time(self):
        with pytest.raises(KeyError, match="unknown sampler"):
            FederationConfig(
                dataset="mnist", algorithm="fedavg",
                scenario=ScenarioConfig(sampler="bogus"),
            )

    def test_participation_probs_reach_the_sampler(self):
        scenario = ScenarioConfig(
            sampler="availability", participation_probs=(0.9, 0.1, 0.5)
        )
        sampler = build_sampler(scenario, 3, 1.0, seed=0)
        assert list(sampler.participation_probs) == [0.9, 0.1, 0.5]

    def test_device_profiles_reach_the_sampler_by_name(self):
        scenario = ScenarioConfig(
            sampler="availability",
            profiles=("edge-phone", "raspberry-pi"),
            profile_participation=(("edge-phone", 0.9), ("raspberry-pi", 0.2)),
        )
        sampler = build_sampler(scenario, 4, 1.0, seed=0)
        assert list(sampler.participation_probs) == [0.9, 0.2, 0.9, 0.2]

    def test_profile_participation_accepts_a_mapping(self):
        """The natural dict spelling works and canonicalizes name-sorted."""
        from_mapping = ScenarioConfig(
            sampler="availability",
            profiles=("edge-phone", "raspberry-pi"),
            profile_participation={"raspberry-pi": 0.2, "edge-phone": 0.9},
        )
        from_pairs = ScenarioConfig(
            sampler="availability",
            profiles=("edge-phone", "raspberry-pi"),
            profile_participation=(("edge-phone", 0.9), ("raspberry-pi", 0.2)),
        )
        assert from_mapping == from_pairs
        sampler = build_sampler(from_mapping, 4, 1.0, seed=0)
        assert list(sampler.participation_probs) == [0.9, 0.2, 0.9, 0.2]

    def test_unknown_profile_name_rejected(self):
        scenario = ScenarioConfig(sampler="availability", profiles=("mainframe",))
        with pytest.raises(KeyError, match="unknown device profile"):
            build_sampler(scenario, 4, 1.0, seed=0)

    def test_profile_scenario_round_trips_through_json(self):
        config = FederationConfig(
            dataset="mnist", algorithm="fedavg",
            scenario=ScenarioConfig(
                sampler="availability",
                participation_probs=(0.8, 0.4),
                profiles=("edge-phone",),
                profile_participation=(("edge-phone", 0.7),),
            ),
        )
        restored = FederationConfig.from_json(config.to_json())
        assert restored == config
        assert restored.scenario.profile_participation == (("edge-phone", 0.7),)


class TestAvailabilitySampler:
    def test_deterministic_under_seed(self):
        kwargs = dict(
            sample_fraction=0.5, participation=0.7,
            participation_spread=0.2, dropout=0.1,
        )
        a = AvailabilitySampler(40, seed=11, **kwargs)
        b = AvailabilitySampler(40, seed=11, **kwargs)
        rounds_a = [a.sample() for _ in range(10)]
        rounds_b = [b.sample() for _ in range(10)]
        assert rounds_a == rounds_b

    def test_dropout_reproducible_and_thinning(self):
        """Dropout thins rounds but never empties them, reproducibly."""
        full = AvailabilitySampler(30, sample_fraction=1.0, seed=5, dropout=0.0)
        dropped = AvailabilitySampler(30, sample_fraction=1.0, seed=5, dropout=0.6)
        dropped_again = AvailabilitySampler(30, sample_fraction=1.0, seed=5, dropout=0.6)
        sizes_full = [len(full.sample()) for _ in range(20)]
        rounds_dropped = [dropped.sample() for _ in range(20)]
        assert [dropped_again.sample() for _ in range(20)] == rounds_dropped
        sizes_dropped = [len(participants) for participants in rounds_dropped]
        assert sizes_full == [30] * 20
        assert np.mean(sizes_dropped) < 0.6 * 30
        assert min(sizes_dropped) >= 1

    def test_never_empty_even_under_extreme_dropout(self):
        sampler = AvailabilitySampler(
            10, sample_fraction=0.3, seed=0, participation=0.01, dropout=0.99
        )
        for _ in range(50):
            assert len(sampler.sample()) >= 1

    def test_explicit_per_client_probabilities(self):
        probs = [1.0, 1.0, 0.01, 0.01]
        sampler = AvailabilitySampler(
            4, sample_fraction=1.0, seed=7, participation_probs=probs
        )
        counts = np.zeros(4)
        for _ in range(200):
            for index in sampler.sample():
                counts[index] += 1
        assert counts[0] > 150 and counts[1] > 150
        assert counts[2] < 50 and counts[3] < 50

    def test_device_profiles_assigned_round_robin(self):
        """Profile-derived probabilities follow WallClockModel's client map."""
        profiles = [EDGE_PHONE, RASPBERRY_PI]
        sampler = AvailabilitySampler(
            6, sample_fraction=1.0, seed=0,
            profiles=profiles,
            profile_participation={"edge-phone": 0.9, "raspberry-pi": 0.2},
        )
        clock = WallClockModel(profiles, flops_per_example=1e6, examples_per_round=10)
        for client_id in range(6):
            expected = 0.9 if clock.profile_for(client_id).name == "edge-phone" else 0.2
            assert sampler.participation_probs[client_id] == expected

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            AvailabilitySampler(5, participation=0.0)
        with pytest.raises(ValueError):
            AvailabilitySampler(5, dropout=1.0)
        with pytest.raises(ValueError):
            AvailabilitySampler(5, participation_probs=[0.5, 0.5])  # wrong length
        with pytest.raises(ValueError):
            AvailabilitySampler(2, participation_probs=[0.5, 1.5])

    def test_availability_run_is_reproducible(self):
        """Same config, same history — the sampler draws from its own seed."""
        config = FederationConfig(
            dataset="mnist", algorithm="fedavg", num_clients=4, rounds=3,
            sample_fraction=1.0, n_train=120, n_test=60,
            local=LocalTrainConfig(epochs=1, batch_size=10),
            scenario=ScenarioConfig(
                sampler="availability", participation=0.6, dropout=0.2
            ),
        )
        first = Federation.from_config(config).run()
        second = Federation.from_config(config).run()
        assert [r.sampled_clients for r in first.rounds] == [
            r.sampled_clients for r in second.rounds
        ]
        assert first.final_accuracy == second.final_accuracy


class TestFixedSamplerValidation:
    def test_explicit_num_clients_validates_range(self):
        with pytest.raises(ValueError, match="out of range"):
            FixedSampler([0, 7], num_clients=5)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FixedSampler([1, 1], num_clients=3)

    def test_inference_still_works_without_num_clients(self):
        sampler = FixedSampler([3, 1, 4])
        assert sampler.num_clients == 5
        assert sampler.sample() == [1, 3, 4]

    def test_composes_with_larger_federation(self):
        sampler = FixedSampler([0, 1], num_clients=100)
        assert sampler.num_clients == 100
        assert sampler.clients_per_round == 2
