"""The Federation facade and FederationConfig serialization round-trips."""

import pytest

from repro.federated import Federation, FederationConfig, LocalTrainConfig
from repro.pruning import StructuredConfig, UnstructuredConfig


def tiny_config(**overrides):
    base = dict(
        dataset="mnist",
        algorithm="fedavg",
        num_clients=3,
        rounds=2,
        sample_fraction=1.0,
        n_train=120,
        n_test=60,
        seed=0,
        local=LocalTrainConfig(epochs=1, batch_size=10),
    )
    base.update(overrides)
    return FederationConfig(**base)


class TestConfigSerialization:
    def test_dict_round_trip_equality(self):
        config = tiny_config(
            algorithm="sub-fedavg-hy",
            unstructured=UnstructuredConfig(target_rate=0.4, step=0.2),
            structured=StructuredConfig(target_rate=0.3),
        )
        assert FederationConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip_equality(self):
        config = tiny_config(
            algorithm="sub-fedavg-un",
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.25, epsilon=0.0),
        )
        restored = FederationConfig.from_json(config.to_json())
        assert restored == config
        assert restored.unstructured == config.unstructured
        assert restored.local == config.local

    def test_none_sections_survive(self):
        config = tiny_config()
        restored = FederationConfig.from_json(config.to_json())
        assert restored.unstructured is None
        assert restored.structured is None

    def test_to_dict_is_json_safe(self):
        payload = tiny_config().to_dict()
        assert isinstance(payload["local"], dict)
        assert payload["algorithm"] == "fedavg"

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError, match="unknown FederationConfig fields"):
            FederationConfig.from_dict({"dataset": "mnist", "typo_field": 1})

    def test_local_default_factory_not_shared(self):
        first = FederationConfig(dataset="mnist", algorithm="fedavg")
        second = FederationConfig(dataset="mnist", algorithm="fedavg")
        assert first.local == second.local
        assert first.local is not second.local


class TestFederationFacade:
    def test_from_config_builds_clients_and_trainer(self):
        federation = Federation.from_config(tiny_config())
        assert len(federation.clients) == 3
        assert federation.trainer.rounds == 2
        assert federation.algorithm == "fedavg"
        assert federation.history.rounds == []

    def test_run_populates_history(self):
        federation = Federation.from_config(tiny_config())
        history = federation.run()
        assert history is federation.history
        assert len(history.rounds) == 2
        assert history.final_accuracy is not None

    def test_trainer_overrides(self):
        config = tiny_config(
            algorithm="sub-fedavg-un",
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.25),
        )
        federation = Federation.from_config(config, track_trajectory=True)
        assert federation.trainer.track_trajectory is True

    def test_json_reproduces_identical_run(self):
        """Acceptance: from_json(to_json()) reproduces the exact run."""
        config = tiny_config(
            algorithm="sub-fedavg-un",
            unstructured=UnstructuredConfig(
                target_rate=0.5, step=0.25, epsilon=0.0, acc_threshold=0.0
            ),
        )
        original = Federation.from_config(config).run()
        replayed = Federation.from_json(config.to_json()).run()
        assert replayed.final_accuracy == original.final_accuracy
        assert replayed.total_communication_bytes == original.total_communication_bytes
        assert replayed.final_per_client_accuracy == original.final_per_client_accuracy
