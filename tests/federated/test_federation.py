"""The Federation facade and FederationConfig serialization round-trips."""

import dataclasses

import pytest

from repro.federated import (
    DataConfig,
    Federation,
    FederationConfig,
    LocalTrainConfig,
    ScenarioConfig,
)
from repro.pruning import StructuredConfig, UnstructuredConfig


def tiny_config(**overrides):
    base = dict(
        dataset="mnist",
        algorithm="fedavg",
        num_clients=3,
        rounds=2,
        sample_fraction=1.0,
        n_train=120,
        n_test=60,
        seed=0,
        local=LocalTrainConfig(epochs=1, batch_size=10),
    )
    base.update(overrides)
    return FederationConfig(**base)


class TestConfigSerialization:
    def test_dict_round_trip_equality(self):
        config = tiny_config(
            algorithm="sub-fedavg-hy",
            unstructured=UnstructuredConfig(target_rate=0.4, step=0.2),
            structured=StructuredConfig(target_rate=0.3),
        )
        assert FederationConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip_equality(self):
        config = tiny_config(
            algorithm="sub-fedavg-un",
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.25, epsilon=0.0),
        )
        restored = FederationConfig.from_json(config.to_json())
        assert restored == config
        assert restored.unstructured == config.unstructured
        assert restored.local == config.local

    def test_none_sections_survive(self):
        config = tiny_config()
        restored = FederationConfig.from_json(config.to_json())
        assert restored.unstructured is None
        assert restored.structured is None

    def test_to_dict_is_json_safe(self):
        payload = tiny_config().to_dict()
        assert isinstance(payload["local"], dict)
        assert payload["algorithm"] == "fedavg"

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError, match="unknown FederationConfig fields"):
            FederationConfig.from_dict({"dataset": "mnist", "typo_field": 1})

    def test_local_default_factory_not_shared(self):
        first = FederationConfig(dataset="mnist", algorithm="fedavg")
        second = FederationConfig(dataset="mnist", algorithm="fedavg")
        assert first.local == second.local
        assert first.local is not second.local

    def test_nested_sections_round_trip(self):
        config = tiny_config(
            data=DataConfig(partition="label-k", labels_per_client=3, n_train=120),
            scenario=ScenarioConfig(
                sampler="availability", participation=0.8, dropout=0.1
            ),
        )
        restored = FederationConfig.from_json(config.to_json())
        assert restored == config
        assert restored.data.labels_per_client == 3
        assert restored.scenario.dropout == 0.1


#: A verbatim PR-3-era (pre-scenario, flat schema) payload: no
#: ``data``/``scenario`` sections, data fields at the top level.
LEGACY_PAYLOAD = {
    "dataset": "mnist",
    "algorithm": "fedavg",
    "num_clients": 3,
    "rounds": 2,
    "sample_fraction": 1.0,
    "shards_per_client": 2,
    "n_train": 120,
    "n_test": 60,
    "val_fraction": 0.1,
    "seed": 0,
    "eval_every": 0,
    "partition": "shard",
    "dirichlet_alpha": 0.5,
    "backend": "serial",
    "workers": 0,
    "local": {
        "lr": 0.01, "momentum": 0.5, "weight_decay": 0.0,
        "batch_size": 10, "epochs": 1, "prox_mu": 0.0, "mtl_lambda": 0.0,
    },
    "unstructured": None,
    "structured": None,
}


class TestLegacyConfigMigration:
    """PR-3-era flat payloads keep loading, running and hashing identically."""

    def test_flat_payload_equals_nested_equivalent(self):
        legacy = FederationConfig.from_dict(LEGACY_PAYLOAD)
        nested = tiny_config(
            data=DataConfig(n_train=120, n_test=60), n_train=None, n_test=None
        )
        assert legacy == nested
        assert legacy.data == DataConfig(n_train=120, n_test=60)
        assert legacy.scenario == ScenarioConfig()

    def test_flat_constructor_kwargs_still_fold_into_data(self):
        config = FederationConfig(
            dataset="mnist", algorithm="fedavg",
            partition="dirichlet", dirichlet_alpha=0.3, shards_per_client=3,
        )
        assert config.data.partition == "dirichlet"
        assert config.data.dirichlet_alpha == 0.3
        # The flat read aliases proxy to the data section.
        assert config.partition == "dirichlet"
        assert config.shards_per_client == 3

    def test_post_legacy_data_fields_accepted_flat_too(self):
        """Every DataConfig field works as a flat keyword, not just the
        six the old schema had — so registry-declared partitioner knobs
        (labels_per_client, min_size, ...) are reachable from overrides."""
        config = FederationConfig(
            dataset="mnist", algorithm="fedavg",
            partition="label-k", labels_per_client=3, min_size=4,
        )
        assert config.data.labels_per_client == 3
        assert config.data.min_size == 4
        assert config.labels_per_client == 3

    def test_stable_hash_unchanged_from_flat_schema_era(self):
        """Hashes pinned from the PR-3 tree: result stores must resume."""
        legacy = FederationConfig.from_dict(LEGACY_PAYLOAD)
        assert legacy.stable_hash() == "227805adad4471c4"
        assert (
            legacy.stable_hash(
                extra={"trainer_overrides": {"aggregator": "zerofill"}}
            )
            == "57fd28bf6f291a04"
        )
        dirichlet = FederationConfig(
            dataset="emnist", algorithm="sub-fedavg-un",
            partition="dirichlet", dirichlet_alpha=0.3, shards_per_client=3,
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.2),
        )
        assert dirichlet.stable_hash() == "4d9e3dbba52508f6"

    def test_new_scenario_fields_do_change_the_hash(self):
        base = tiny_config()
        availability = dataclasses.replace(
            base, scenario=ScenarioConfig(sampler="availability", dropout=0.2)
        )
        label_k = dataclasses.replace(
            base, data=dataclasses.replace(base.data, partition="label-k")
        )
        assert availability.stable_hash() != base.stable_hash()
        assert label_k.stable_hash() != base.stable_hash()

    def test_flat_payload_replays_identically_to_nested(self):
        legacy_run = Federation.from_dict(LEGACY_PAYLOAD).run()
        nested_run = Federation.from_config(
            tiny_config(data=DataConfig(n_train=120, n_test=60), n_train=None, n_test=None)
        ).run()
        assert legacy_run.final_accuracy == nested_run.final_accuracy
        assert (
            legacy_run.final_per_client_accuracy
            == nested_run.final_per_client_accuracy
        )


class TestFederationFacade:
    def test_from_config_builds_clients_and_trainer(self):
        federation = Federation.from_config(tiny_config())
        assert len(federation.clients) == 3
        assert federation.trainer.rounds == 2
        assert federation.algorithm == "fedavg"
        assert federation.history.rounds == []

    def test_run_populates_history(self):
        federation = Federation.from_config(tiny_config())
        history = federation.run()
        assert history is federation.history
        assert len(history.rounds) == 2
        assert history.final_accuracy is not None

    def test_trainer_overrides(self):
        config = tiny_config(
            algorithm="sub-fedavg-un",
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.25),
        )
        federation = Federation.from_config(config, track_trajectory=True)
        assert federation.trainer.track_trajectory is True

    def test_json_reproduces_identical_run(self):
        """Acceptance: from_json(to_json()) reproduces the exact run."""
        config = tiny_config(
            algorithm="sub-fedavg-un",
            unstructured=UnstructuredConfig(
                target_rate=0.5, step=0.25, epsilon=0.0, acc_threshold=0.0
            ),
        )
        original = Federation.from_config(config).run()
        replayed = Federation.from_json(config.to_json()).run()
        assert replayed.final_accuracy == original.final_accuracy
        assert replayed.total_communication_bytes == original.total_communication_bytes
        assert replayed.final_per_client_accuracy == original.final_per_client_accuracy
