"""Integration tests for the paper's headline phenomena at miniature scale.

These are slower (seconds each) and deliberately assert only the robust
qualitative shape — orderings, correlations — not absolute accuracies.
"""

import numpy as np
import pytest

from repro.data.partition import label_overlap
from repro.federated import (
    FederationConfig,
    LocalTrainConfig,
    build_trainer,
    make_clients,
)
from repro.pruning import UnstructuredConfig, hamming_distance


def run_federation(algorithm, seed=11, rounds=5, **extra):
    config = FederationConfig(
        dataset="mnist",
        algorithm=algorithm,
        num_clients=8,
        rounds=rounds,
        sample_fraction=1.0,
        n_train=480,
        n_test=240,
        seed=seed,
        local=LocalTrainConfig(epochs=3, batch_size=10),
        **extra,
    )
    clients = make_clients(config)
    trainer = build_trainer(config, clients)
    history = trainer.run()
    return trainer, clients, history


class TestRemark2:
    """Under 2-shard non-IID, personalization restores the value of federation."""

    @pytest.fixture(scope="class")
    def results(self):
        _, _, standalone = run_federation("standalone")
        _, _, fedavg = run_federation("fedavg")
        _, _, sub = run_federation(
            "sub-fedavg-un",
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.2),
        )
        return standalone, fedavg, sub

    def test_fedavg_collapses_below_standalone(self, results):
        standalone, fedavg, _ = results
        assert fedavg.final_accuracy < standalone.final_accuracy

    def test_subfedavg_beats_fedavg(self, results):
        _, fedavg, sub = results
        assert sub.final_accuracy > fedavg.final_accuracy

    def test_subfedavg_near_or_above_standalone(self, results):
        standalone, _, sub = results
        assert sub.final_accuracy >= standalone.final_accuracy - 0.10


class TestClientSubnetworkObservation:
    """§3.1: clients with overlapping labels develop more similar masks."""

    def test_mask_agreement_correlates_with_label_overlap(self):
        trainer, clients, _ = run_federation(
            "sub-fedavg-un",
            rounds=6,
            seed=5,
            unstructured=UnstructuredConfig(target_rate=0.6, step=0.2),
        )
        overlaps, agreements = [], []
        for i in range(len(clients)):
            for j in range(i + 1, len(clients)):
                overlaps.append(label_overlap(clients[i].data, clients[j].data))
                agreements.append(
                    1.0 - hamming_distance(clients[i].mask, clients[j].mask)
                )
        overlaps = np.array(overlaps)
        agreements = np.array(agreements)
        assert overlaps.std() > 0, "partition produced no overlap variation"
        correlation = np.corrcoef(overlaps, agreements)[0, 1]
        assert correlation > 0.0


class TestCommunicationClaims:
    """§4.2.2: pruning shrinks exchanges below the dense FedAvg cost."""

    def test_subfedavg_total_cheaper_than_fedavg(self):
        _, _, fedavg = run_federation("fedavg")
        _, _, sub = run_federation(
            "sub-fedavg-un",
            unstructured=UnstructuredConfig(
                target_rate=0.7, step=0.35, epsilon=0.0, acc_threshold=0.0
            ),
        )
        assert sub.total_communication_bytes < fedavg.total_communication_bytes

    def test_uplink_shrinks_monotonically_with_commits(self):
        trainer, _, history = run_federation(
            "sub-fedavg-un",
            unstructured=UnstructuredConfig(
                target_rate=0.7, step=0.2, epsilon=0.0, acc_threshold=0.0
            ),
        )
        uploads = [record.uploaded_bytes for record in history.rounds]
        # Strict monotone not guaranteed (sampling), but the trend must hold.
        assert uploads[-1] < uploads[0]


class TestLGFedAvgPersonalization:
    def test_representation_layers_stay_personal(self):
        trainer, clients, _ = run_federation("lg-fedavg", rounds=3)
        conv_a = clients[0].state_dict()["conv1.weight"]
        conv_b = clients[1].state_dict()["conv1.weight"]
        assert not np.allclose(conv_a, conv_b)

    def test_shared_head_synchronized_at_round_start(self):
        trainer, clients, _ = run_federation("lg-fedavg", rounds=3)
        for client in clients:
            client.load_partial(trainer.global_state, trainer.shared_names)
        head_a = clients[0].state_dict()["fc2.weight"]
        head_b = clients[1].state_dict()["fc2.weight"]
        np.testing.assert_array_equal(head_a, head_b)
