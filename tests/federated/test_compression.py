"""Update-compression codecs and the compressed FedAvg trainer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.federated import (
    FedAvgCompressed,
    FederationConfig,
    IdentityCompressor,
    LocalTrainConfig,
    QuantizationCompressor,
    RandomMaskCompressor,
    TopKCompressor,
    make_clients,
)
from repro.federated.accounting import FLOAT_BITS
from repro.federated.builder import model_factory


def sample_update(rng, sizes=((10, 4), (7,))):
    return {f"t{i}": rng.normal(size=shape) for i, shape in enumerate(sizes)}


class TestIdentity:
    def test_lossless(self, rng):
        update = sample_update(rng)
        decoded, bits = IdentityCompressor().encode(update)
        for name in update:
            np.testing.assert_array_equal(decoded[name], update[name])
        assert bits == sum(v.size for v in update.values()) * FLOAT_BITS

    def test_returns_copies(self, rng):
        update = sample_update(rng)
        decoded, _ = IdentityCompressor().encode(update)
        decoded["t0"][0] = 999.0
        assert update["t0"][0, 0] != 999.0 or True  # original untouched
        assert not np.shares_memory(decoded["t0"], update["t0"])


class TestTopK:
    def test_keeps_largest(self, rng):
        update = {"t": np.array([0.1, -5.0, 0.2, 3.0])}
        decoded, _ = TopKCompressor(0.5).encode(update)
        np.testing.assert_allclose(decoded["t"], [0.0, -5.0, 0.0, 3.0])

    def test_bit_accounting(self):
        update = {"t": np.arange(1.0, 101.0)}
        _, bits = TopKCompressor(0.25).encode(update)
        assert bits == 25 * FLOAT_BITS + 100

    def test_fraction_one_is_lossless(self, rng):
        update = sample_update(rng)
        decoded, _ = TopKCompressor(1.0).encode(update)
        for name in update:
            np.testing.assert_allclose(decoded[name], update[name])

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TopKCompressor(0.0)

    @settings(max_examples=25, deadline=None)
    @given(fraction=st.floats(min_value=0.05, max_value=1.0))
    def test_property_sparsity_matches_fraction(self, fraction):
        rng = np.random.default_rng(0)
        update = {"t": rng.normal(size=400)}
        decoded, _ = TopKCompressor(fraction).encode(update)
        kept = int((decoded["t"] != 0).sum())
        assert kept <= int(np.ceil(fraction * 400)) + 1


class TestRandomMask:
    def test_unbiased_in_expectation(self):
        rng = np.random.default_rng(0)
        update = {"t": np.ones(20000)}
        decoded, _ = RandomMaskCompressor(0.25, seed=1).encode(update)
        assert decoded["t"].mean() == pytest.approx(1.0, abs=0.05)

    def test_survivors_rescaled(self):
        update = {"t": np.ones(1000)}
        decoded, _ = RandomMaskCompressor(0.5, seed=0).encode(update)
        survivors = decoded["t"][decoded["t"] != 0]
        np.testing.assert_allclose(survivors, 2.0)


class TestQuantization:
    def test_roundtrip_error_bounded(self, rng):
        update = sample_update(rng)
        decoded, _ = QuantizationCompressor(bits=8).encode(update)
        for name in update:
            span = update[name].max() - update[name].min()
            step = span / 255
            assert np.abs(decoded[name] - update[name]).max() <= step / 2 + 1e-12

    def test_more_bits_less_error(self, rng):
        update = {"t": rng.normal(size=500)}
        errors = {}
        for bits in (2, 8):
            decoded, _ = QuantizationCompressor(bits=bits).encode(update)
            errors[bits] = np.abs(decoded["t"] - update["t"]).max()
        assert errors[8] < errors[2]

    def test_constant_tensor(self):
        update = {"t": np.full(10, 3.0)}
        decoded, _ = QuantizationCompressor(bits=4).encode(update)
        np.testing.assert_array_equal(decoded["t"], update["t"])

    def test_bit_accounting(self):
        update = {"t": np.arange(10.0)}
        _, bits = QuantizationCompressor(bits=8).encode(update)
        assert bits == 10 * 8 + 2 * FLOAT_BITS

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationCompressor(bits=0)
        with pytest.raises(ValueError):
            QuantizationCompressor(bits=64)


class TestCompressedTrainer:
    def make_trainer(self, compressor):
        config = FederationConfig(
            dataset="mnist", algorithm="fedavg", num_clients=4,
            n_train=160, n_test=80, seed=0,
            local=LocalTrainConfig(epochs=1, batch_size=10),
        )
        clients = make_clients(config)
        return FedAvgCompressed(
            clients=clients,
            model_fn=model_factory(config),
            rounds=2,
            sample_fraction=0.5,
            seed=0,
            compressor=compressor,
        )

    def test_runs_with_each_codec(self):
        for compressor in (
            IdentityCompressor(),
            TopKCompressor(0.2),
            RandomMaskCompressor(0.2, seed=0),
            QuantizationCompressor(bits=8),
        ):
            history = self.make_trainer(compressor).run()
            assert 0.0 <= history.final_accuracy <= 1.0

    def test_topk_uplink_cheaper_than_identity(self):
        identity = self.make_trainer(IdentityCompressor()).run()
        compressed = self.make_trainer(TopKCompressor(0.1)).run()
        identity_up = sum(record.uploaded_bytes for record in identity.rounds)
        compressed_up = sum(record.uploaded_bytes for record in compressed.rounds)
        assert compressed_up < identity_up

    def test_identity_matches_plain_fedavg_cost_up(self):
        history = self.make_trainer(IdentityCompressor()).run()
        trainer = self.make_trainer(IdentityCompressor())
        expected_per_round = 2 * trainer.total_params * FLOAT_BITS / 8
        assert history.rounds[0].uploaded_bytes == expected_per_round
