"""Update-compression codecs and the compressed FedAvg trainer."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.federated import (
    FedAvgCompressed,
    FederationConfig,
    IdentityCompressor,
    LocalTrainConfig,
    QuantizationCompressor,
    RandomMaskCompressor,
    TopKCompressor,
    make_clients,
)
from repro.federated.accounting import FLOAT_BITS
from repro.federated.builder import model_factory
from repro.federated.compression import (
    CompressionConfig,
    CompressorSpec,
    EncodedState,
    available_compressors,
    build_compressor,
    decode_state,
    pack_payload,
    pack_state,
    register_compressor,
    unpack_payload,
    unpack_state,
    unregister_compressor,
)


def sample_update(rng, sizes=((10, 4), (7,))):
    return {f"t{i}": rng.normal(size=shape) for i, shape in enumerate(sizes)}


class TestPayloadContainer:
    def test_roundtrip_meta_and_arrays(self, rng):
        meta = {"codec": "x", "nested": {"a": [1, 2]}}
        arrays = {
            "f64": rng.normal(size=(3, 2)),
            "u8": np.arange(5, dtype=np.uint8),
            "scalar": np.float64(3.5).reshape(()),
        }
        out_meta, out = unpack_payload(pack_payload(meta, arrays))
        assert out_meta == meta
        for name in arrays:
            assert out[name].dtype == arrays[name].dtype
            np.testing.assert_array_equal(out[name], arrays[name])

    def test_deterministic_bytes(self, rng):
        update = sample_update(rng)
        assert pack_state(update) == pack_state(update)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            unpack_payload(b"not a payload")

    def test_state_roundtrip_bitwise(self, rng):
        update = sample_update(rng)
        decoded = unpack_state(pack_state(update))
        for name in update:
            np.testing.assert_array_equal(decoded[name], update[name])


class TestIdentity:
    def test_encode_produces_bytes(self, rng):
        update = sample_update(rng)
        encoded = IdentityCompressor().encode(update)
        assert isinstance(encoded, EncodedState)
        assert isinstance(encoded.payload, bytes)
        assert encoded.codec == "identity"
        assert encoded.nbytes == len(encoded.payload)

    def test_decode_bitwise_lossless(self, rng):
        update = sample_update(rng)
        codec = IdentityCompressor()
        decoded = codec.decode(codec.encode(update))
        for name in update:
            np.testing.assert_array_equal(decoded[name], update[name])

    def test_modeled_bits(self, rng):
        update = sample_update(rng)
        _, bits = IdentityCompressor().roundtrip(update)
        assert bits == sum(v.size for v in update.values()) * FLOAT_BITS

    def test_returns_copies(self, rng):
        update = sample_update(rng)
        decoded, _ = IdentityCompressor().roundtrip(update)
        decoded["t0"][0] = 999.0
        assert not np.shares_memory(decoded["t0"], update["t0"])
        assert update["t0"][0, 0] != 999.0


class TestTopK:
    def test_keeps_largest(self, rng):
        update = {"t": np.array([0.1, -5.0, 0.2, 3.0])}
        decoded, _ = TopKCompressor(0.5).roundtrip(update)
        np.testing.assert_allclose(decoded["t"], [0.0, -5.0, 0.0, 3.0])

    def test_bit_accounting(self):
        update = {"t": np.arange(1.0, 101.0)}
        _, bits = TopKCompressor(0.25).roundtrip(update)
        assert bits == 25 * FLOAT_BITS + 100

    def test_fraction_one_is_lossless(self, rng):
        update = sample_update(rng)
        decoded, _ = TopKCompressor(1.0).roundtrip(update)
        for name in update:
            np.testing.assert_allclose(decoded[name], update[name])

    def test_survivors_bitwise_exact(self, rng):
        update = sample_update(rng)
        decoded, _ = TopKCompressor(0.5).roundtrip(update)
        for name in update:
            kept = decoded[name] != 0
            np.testing.assert_array_equal(decoded[name][kept], update[name][kept])

    def test_default_instance_decodes_peer_payload(self, rng):
        # Decode parameters travel in the payload header, not the codec.
        encoded = TopKCompressor(0.25).encode(sample_update(rng))
        expected = TopKCompressor(0.25).decode(encoded)
        decoded = TopKCompressor().decode(encoded.payload)
        for name in expected:
            np.testing.assert_array_equal(decoded[name], expected[name])

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TopKCompressor(0.0)

    @settings(max_examples=25, deadline=None)
    @given(fraction=st.floats(min_value=0.05, max_value=1.0))
    def test_property_sparsity_matches_fraction(self, fraction):
        rng = np.random.default_rng(0)
        update = {"t": rng.normal(size=400)}
        decoded, _ = TopKCompressor(fraction).roundtrip(update)
        kept = int((decoded["t"] != 0).sum())
        assert kept <= int(np.ceil(fraction * 400)) + 1


class TestRandomMask:
    def test_unbiased_in_expectation(self):
        update = {"t": np.ones(20000)}
        decoded, _ = RandomMaskCompressor(0.25, seed=1).roundtrip(update)
        assert decoded["t"].mean() == pytest.approx(1.0, abs=0.05)

    def test_survivors_rescaled(self):
        update = {"t": np.ones(1000)}
        decoded, _ = RandomMaskCompressor(0.5, seed=0).roundtrip(update)
        survivors = decoded["t"][decoded["t"] != 0]
        np.testing.assert_allclose(survivors, 2.0)

    def test_decode_needs_no_seed(self, rng):
        # Survivors travel explicitly: any instance decodes the payload.
        update = sample_update(rng)
        encoder = RandomMaskCompressor(0.5, seed=7)
        encoded = encoder.encode(update)
        decoded = RandomMaskCompressor().decode(encoded.payload)
        assert any((decoded[name] != 0).any() for name in update)


class TestQuantization:
    def test_roundtrip_error_bounded(self, rng):
        update = sample_update(rng)
        decoded, _ = QuantizationCompressor(bits=8).roundtrip(update)
        for name in update:
            span = update[name].max() - update[name].min()
            step = span / 255
            assert np.abs(decoded[name] - update[name]).max() <= step / 2 + 1e-12

    def test_more_bits_less_error(self, rng):
        update = {"t": rng.normal(size=500)}
        errors = {}
        for bits in (2, 8):
            decoded, _ = QuantizationCompressor(bits=bits).roundtrip(update)
            errors[bits] = np.abs(decoded["t"] - update["t"]).max()
        assert errors[8] < errors[2]

    def test_encode_decode_bitwise_stable(self, rng):
        # Quantized values are a fixed point: a second encode→decode pass
        # reproduces them bit-for-bit (the wire satellite's guarantee).
        update = sample_update(rng)
        codec = QuantizationCompressor(bits=8)
        once, _ = codec.roundtrip(update)
        twice, _ = codec.roundtrip(once)
        for name in update:
            np.testing.assert_array_equal(once[name], twice[name])

    def test_wide_codes_use_wider_dtype(self, rng):
        update = {"t": rng.normal(size=64)}
        codec = QuantizationCompressor(bits=16)
        decoded = codec.decode(codec.encode(update))
        span = update["t"].max() - update["t"].min()
        step = span / (2 ** 16 - 1)
        assert np.abs(decoded["t"] - update["t"]).max() <= step / 2 + 1e-12

    def test_constant_tensor(self):
        update = {"t": np.full(10, 3.0)}
        decoded, _ = QuantizationCompressor(bits=4).roundtrip(update)
        np.testing.assert_array_equal(decoded["t"], update["t"])

    def test_bit_accounting(self):
        update = {"t": np.arange(10.0)}
        _, bits = QuantizationCompressor(bits=8).roundtrip(update)
        assert bits == 10 * 8 + 2 * FLOAT_BITS

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationCompressor(bits=0)
        with pytest.raises(ValueError):
            QuantizationCompressor(bits=64)


class TestRegistry:
    def test_builtin_codecs_registered(self):
        assert set(available_compressors()) >= {
            "identity", "topk", "randommask", "quantize",
        }

    def test_build_from_config(self):
        codec = build_compressor(CompressionConfig(codec="topk", fraction=0.3))
        assert isinstance(codec, TopKCompressor)
        assert codec.fraction == 0.3
        quant = build_compressor(CompressionConfig(codec="quantize", bits=4))
        assert isinstance(quant, QuantizationCompressor)
        assert quant.bits == 4

    def test_build_from_name_and_none(self):
        assert isinstance(build_compressor("identity"), IdentityCompressor)
        assert isinstance(build_compressor(None), IdentityCompressor)

    def test_unknown_codec_raises(self):
        with pytest.raises(KeyError):
            CompressionConfig(codec="nope")
        with pytest.raises(KeyError):
            build_compressor("nope")

    def test_decode_state_dispatches_by_header(self, rng):
        update = sample_update(rng)
        for name in ("identity", "quantize"):
            codec = build_compressor(name)
            expected = codec.decode(codec.encode(update))
            decoded = decode_state(codec.encode(update))
            for key in expected:
                np.testing.assert_array_equal(decoded[key], expected[key])

    def test_register_and_unregister(self):
        @register_compressor("test-null", summary="test codec")
        def _build(config):
            return IdentityCompressor()

        try:
            assert "test-null" in available_compressors()
            with pytest.raises(ValueError):
                register_compressor("test-null")(_build)
        finally:
            spec = unregister_compressor("test-null")
        assert isinstance(spec, CompressorSpec)
        assert "test-null" not in available_compressors()

    def test_decoding_foreign_codec_payload_raises(self, rng):
        encoded = TopKCompressor(0.5).encode(sample_update(rng))
        with pytest.raises(ValueError):
            QuantizationCompressor().decode(encoded.payload)


class TestConfigSection:
    def test_hash_gated(self):
        config = FederationConfig(dataset="mnist", algorithm="fedavg")
        with_codec = dataclasses.replace(
            config, compression=CompressionConfig(codec="quantize")
        )
        assert config.compression is None
        assert with_codec.stable_hash() != config.stable_hash()
        # Absent section ⇒ canonical payload has no compression key at all.
        assert "compression" not in config._canonical_dict()

    def test_dict_roundtrip(self):
        config = FederationConfig(
            dataset="mnist",
            algorithm="fedavg-compressed",
            compression=CompressionConfig(codec="topk", fraction=0.2),
        )
        again = FederationConfig.from_dict(config.to_dict())
        assert again == config
        assert again.compression == CompressionConfig(codec="topk", fraction=0.2)


class TestCompressedTrainer:
    def make_trainer(self, compressor=None, **kwargs):
        config = FederationConfig(
            dataset="mnist", algorithm="fedavg", num_clients=4,
            n_train=160, n_test=80, seed=0,
            local=LocalTrainConfig(epochs=1, batch_size=10),
        )
        clients = make_clients(config)
        return FedAvgCompressed(
            clients=clients,
            model_fn=model_factory(config),
            rounds=2,
            sample_fraction=0.5,
            seed=0,
            compressor=compressor,
            **kwargs,
        )

    def test_runs_with_each_codec(self):
        for compressor in (
            IdentityCompressor(),
            TopKCompressor(0.2),
            RandomMaskCompressor(0.2, seed=0),
            QuantizationCompressor(bits=8),
        ):
            history = self.make_trainer(compressor).run()
            assert 0.0 <= history.final_accuracy <= 1.0

    def test_compression_section_selects_codec(self):
        trainer = self.make_trainer(
            compression=CompressionConfig(codec="topk", fraction=0.2)
        )
        assert isinstance(trainer.compressor, TopKCompressor)
        assert trainer.compressor.fraction == 0.2
        # A plain dict (JSON ergonomics) works too.
        trainer = self.make_trainer(compression={"codec": "quantize", "bits": 4})
        assert isinstance(trainer.compressor, QuantizationCompressor)

    def test_topk_uplink_cheaper_than_identity(self):
        identity = self.make_trainer(IdentityCompressor()).run()
        compressed = self.make_trainer(TopKCompressor(0.1)).run()
        identity_up = sum(record.uploaded_bytes for record in identity.rounds)
        compressed_up = sum(record.uploaded_bytes for record in compressed.rounds)
        assert compressed_up < identity_up

    def test_identity_matches_plain_fedavg_cost_up(self):
        history = self.make_trainer(IdentityCompressor()).run()
        trainer = self.make_trainer(IdentityCompressor())
        expected_per_round = 2 * trainer.total_params * FLOAT_BITS / 8
        assert history.rounds[0].uploaded_bytes == expected_per_round
