"""Checkpoint/resume for long runs."""

import numpy as np
import pytest

from repro.federated import (
    FedAvg,
    FederationConfig,
    LocalTrainConfig,
    load_checkpoint,
    make_clients,
    run_with_checkpoints,
    save_checkpoint,
)
from repro.federated.builder import build_trainer, model_factory
from repro.pruning import UnstructuredConfig


def make_config(algorithm="sub-fedavg-un", rounds=4):
    return FederationConfig(
        dataset="mnist", algorithm=algorithm, num_clients=3,
        rounds=rounds, sample_fraction=1.0, n_train=120, n_test=60, seed=0,
        local=LocalTrainConfig(epochs=1, batch_size=10),
        unstructured=UnstructuredConfig(
            target_rate=0.5, step=0.25, epsilon=0.0, acc_threshold=0.0
        ) if algorithm.startswith("sub-fedavg") else None,
    )


def make_trainer(config):
    return build_trainer(config, make_clients(config))


class TestSaveLoad:
    def test_roundtrip_restores_global_state(self, tmp_path):
        config = make_config()
        trainer = make_trainer(config)
        trainer._round(1, trainer.sampler.sample())
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(path, trainer, completed_rounds=1)

        fresh = make_trainer(make_config())
        completed = load_checkpoint(path, fresh)
        assert completed == 1
        for name, value in trainer.global_state.items():
            np.testing.assert_array_equal(fresh.global_state[name], value)

    def test_restores_masks_and_rates(self, tmp_path):
        config = make_config()
        trainer = make_trainer(config)
        trainer._round(1, trainer.sampler.sample())
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(path, trainer, 1)

        fresh = make_trainer(make_config())
        load_checkpoint(path, fresh)
        for old, new in zip(trainer.clients, fresh.clients):
            assert new.controller.un_rate == old.controller.un_rate
            assert new.controller.un_mask == old.controller.un_mask

    def test_algorithm_mismatch_rejected(self, tmp_path):
        trainer = make_trainer(make_config())
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(path, trainer, 1)
        other = make_trainer(make_config(algorithm="fedavg"))
        with pytest.raises(ValueError, match="checkpoint is for"):
            load_checkpoint(path, other)

    def test_client_mismatch_rejected(self, tmp_path):
        trainer = make_trainer(make_config())
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(path, trainer, 1)
        config = FederationConfig(
            dataset="mnist", algorithm="sub-fedavg-un", num_clients=5,
            n_train=200, n_test=60, seed=0,
            local=LocalTrainConfig(epochs=1),
            unstructured=UnstructuredConfig(),
        )
        other = make_trainer(config)
        with pytest.raises(ValueError, match="client ids"):
            load_checkpoint(path, other)


class TestRunWithCheckpoints:
    def test_completes_and_checkpoints(self, tmp_path):
        trainer = make_trainer(make_config(rounds=4))
        path = tmp_path / "ckpt.pkl"
        history = run_with_checkpoints(trainer, path, every=2)
        assert len(history.rounds) == 4
        assert history.final_accuracy is not None
        assert path.exists()

    def test_resume_skips_completed_rounds(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        # Run the first half and checkpoint.
        first = make_trainer(make_config(rounds=2))
        run_with_checkpoints(first, path, every=1)

        # Resume into a 4-round trainer: only rounds 3-4 should execute.
        resumed = make_trainer(make_config(rounds=4))
        history = run_with_checkpoints(resumed, path, every=1, resume=True)
        assert len(history.rounds) == 4
        assert history.rounds[0].round_index == 1  # restored from checkpoint
        assert history.rounds[-1].round_index == 4

    def test_no_resume_starts_fresh(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        first = make_trainer(make_config(rounds=2))
        run_with_checkpoints(first, path, every=1)
        fresh = make_trainer(make_config(rounds=2))
        history = run_with_checkpoints(fresh, path, every=1, resume=False)
        assert len(history.rounds) == 2

    def test_invalid_every(self, tmp_path):
        trainer = make_trainer(make_config())
        with pytest.raises(ValueError):
            run_with_checkpoints(trainer, tmp_path / "x.pkl", every=0)
