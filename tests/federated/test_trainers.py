"""End-to-end trainer behaviour at miniature scale."""

import numpy as np
import pytest

from repro.federated import (
    FederationConfig,
    History,
    LocalTrainConfig,
    build_federation,
    build_trainer,
    make_clients,
)
from repro.federated.accounting import closed_form_cost
from repro.pruning import StructuredConfig, UnstructuredConfig

FAST = dict(
    num_clients=4,
    rounds=2,
    sample_fraction=0.5,
    n_train=160,
    n_test=80,
    seed=0,
    local=LocalTrainConfig(epochs=1, batch_size=10),
)


def run(algorithm, **overrides):
    kwargs = dict(FAST, dataset="mnist", algorithm=algorithm)
    kwargs.update(overrides)
    trainer = build_federation(**kwargs)
    return trainer, trainer.run()


class TestRunProtocol:
    @pytest.mark.parametrize(
        "algorithm",
        ["standalone", "fedavg", "fedprox", "lg-fedavg", "mtl", "sub-fedavg-un", "sub-fedavg-hy"],
    )
    def test_every_algorithm_completes(self, algorithm):
        _, history = run(algorithm)
        assert isinstance(history, History)
        assert len(history.rounds) == 2
        assert 0.0 <= history.final_accuracy <= 1.0
        assert len(history.final_per_client_accuracy) == 4

    def test_round_records_populated(self):
        _, history = run("fedavg")
        for record in history.rounds:
            assert record.round_index >= 1
            assert len(record.sampled_clients) == 2
            assert record.train_loss > 0

    def test_eval_every_populates_curve(self):
        _, history = run("fedavg", eval_every=1)
        assert len(history.accuracy_curve()) == 2

    def test_determinism(self):
        _, a = run("sub-fedavg-un")
        _, b = run("sub-fedavg-un")
        assert a.final_accuracy == b.final_accuracy
        assert a.total_communication_bytes == b.total_communication_bytes


class TestCommunicationAccounting:
    def test_fedavg_matches_closed_form(self):
        trainer, history = run("fedavg")
        expected = closed_form_cost(
            rounds=2, params_per_round=trainer.total_params, clients_per_round=2
        )
        assert history.total_communication_bytes == expected

    def test_standalone_costs_nothing(self):
        _, history = run("standalone")
        assert history.total_communication_bytes == 0.0

    def test_lg_fedavg_cheaper_than_fedavg(self):
        _, lg = run("lg-fedavg")
        _, fedavg = run("fedavg")
        assert lg.total_communication_bytes < fedavg.total_communication_bytes

    def test_subfedavg_cost_decreases_as_pruning_bites(self):
        config = UnstructuredConfig(target_rate=0.7, step=0.35, epsilon=0.0, acc_threshold=0.0)
        _, history = run("sub-fedavg-un", rounds=4, unstructured=config)
        first, last = history.rounds[0], history.rounds[-1]
        assert last.uploaded_bytes < first.uploaded_bytes


class TestSubFedAvgMechanics:
    def test_sparsity_reaches_target_with_permissive_gates(self):
        config = UnstructuredConfig(target_rate=0.5, step=0.25, epsilon=0.0, acc_threshold=0.0)
        trainer, history = run("sub-fedavg-un", rounds=3, sample_fraction=1.0, unstructured=config)
        assert trainer.mean_unstructured_sparsity() == pytest.approx(0.5, abs=0.01)

    def test_round_records_sparsity(self):
        config = UnstructuredConfig(target_rate=0.5, step=0.5, epsilon=0.0, acc_threshold=0.0)
        _, history = run("sub-fedavg-un", unstructured=config)
        assert history.rounds[-1].mean_sparsity > 0.0

    def test_hybrid_tracks_channel_sparsity(self):
        st = StructuredConfig(target_rate=0.4, step=0.4, epsilon=0.0, acc_threshold=0.0)
        un = UnstructuredConfig(target_rate=0.5, step=0.5, epsilon=0.0, acc_threshold=0.0)
        trainer, history = run(
            "sub-fedavg-hy", sample_fraction=1.0, structured=st, unstructured=un
        )
        assert trainer.mean_channel_sparsity() > 0.0

    def test_masks_differ_across_clients(self):
        """Non-IID data should personalize the subnetworks."""
        config = UnstructuredConfig(target_rate=0.5, step=0.5, epsilon=0.0, acc_threshold=0.0)
        trainer, _ = run("sub-fedavg-un", sample_fraction=1.0, unstructured=config)
        from repro.pruning import hamming_distance

        masks = [client.mask for client in trainer.clients]
        distances = [
            hamming_distance(masks[i], masks[j])
            for i in range(len(masks))
            for j in range(i + 1, len(masks))
        ]
        assert max(distances) > 0.0


class TestBuilder:
    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            build_federation(dataset="mnist", algorithm="bogus", **{
                k: v for k, v in FAST.items()
            })

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            FederationConfig(dataset="svhn")

    def test_fedprox_gets_default_mu(self):
        config = FederationConfig(
            dataset="mnist", algorithm="fedprox", num_clients=4,
            n_train=160, n_test=40, local=LocalTrainConfig(epochs=1),
        )
        clients = make_clients(config)
        assert all(client.config.prox_mu > 0 for client in clients)

    def test_mtl_gets_default_lambda(self):
        config = FederationConfig(
            dataset="mnist", algorithm="mtl", num_clients=4,
            n_train=160, n_test=40, local=LocalTrainConfig(epochs=1),
        )
        clients = make_clients(config)
        assert all(client.config.mtl_lambda > 0 for client in clients)

    def test_build_trainer_type_dispatch(self):
        from repro.federated import SubFedAvgHy

        config = FederationConfig(
            dataset="mnist", algorithm="sub-fedavg-hy", num_clients=4,
            n_train=160, n_test=40, local=LocalTrainConfig(epochs=1),
        )
        trainer = build_trainer(config, make_clients(config))
        assert isinstance(trainer, SubFedAvgHy)

    def test_all_clients_start_from_same_weights(self):
        config = FederationConfig(
            dataset="mnist", algorithm="fedavg", num_clients=3,
            n_train=120, n_test=40, local=LocalTrainConfig(epochs=1),
        )
        clients = make_clients(config)
        reference = clients[0].state_dict()
        for client in clients[1:]:
            for name, value in client.state_dict().items():
                np.testing.assert_array_equal(value, reference[name])

    def test_invalid_rounds(self):
        from repro.federated.trainers.base import FederatedTrainer

        config = FederationConfig(
            dataset="mnist", algorithm="fedavg", num_clients=2,
            n_train=80, n_test=40, local=LocalTrainConfig(epochs=1),
        )
        clients = make_clients(config)
        from repro.federated import FedAvg
        from repro.federated.builder import model_factory

        with pytest.raises(ValueError):
            FedAvg(clients, model_factory(config), rounds=0)
