"""History/RoundRecord bookkeeping."""

from repro.federated import History, RoundRecord


def record(index, accuracy=None, up=10.0, down=5.0):
    return RoundRecord(
        round_index=index,
        sampled_clients=[0, 1],
        train_loss=1.0,
        mean_accuracy=accuracy,
        uploaded_bytes=up,
        downloaded_bytes=down,
    )


class TestHistory:
    def test_append_accumulates_traffic(self):
        history = History(algorithm="x")
        history.append(record(1))
        history.append(record(2))
        assert history.total_communication_bytes == 30.0
        assert history.total_communication_gb == 30.0 / 1e9

    def test_accuracy_curve_skips_unevaluated(self):
        history = History(algorithm="x")
        history.append(record(1, accuracy=0.5))
        history.append(record(2))
        history.append(record(3, accuracy=0.8))
        assert history.accuracy_curve() == [(1, 0.5), (3, 0.8)]

    def test_rounds_to_accuracy(self):
        history = History(algorithm="x")
        for i, accuracy in enumerate([0.3, 0.6, 0.9], start=1):
            history.append(record(i, accuracy=accuracy))
        assert history.rounds_to_accuracy(0.55) == 2
        assert history.rounds_to_accuracy(0.95) is None

    def test_empty_curve(self):
        history = History(algorithm="x")
        assert history.accuracy_curve() == []
        assert history.rounds_to_accuracy(0.1) is None
