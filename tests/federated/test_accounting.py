"""Communication-cost model and FLOP accounting."""

import numpy as np
import pytest

from repro.federated.accounting import (
    FLOAT_BITS,
    closed_form_cost,
    dense_conv_flops,
    dense_exchange,
    flop_reduction_factor,
    partial_exchange,
    pruned_conv_flops,
    sparse_exchange,
)
from repro.models import LeNet5
from repro.pruning import ChannelMask


class TestCommunicationModel:
    def test_dense_exchange_symmetric(self):
        traffic = dense_exchange(num_params=1000, num_clients=10)
        assert traffic.uploaded_bytes == traffic.downloaded_bytes == 10 * 1000 * 4

    def test_closed_form_matches_meter(self):
        """Paper formula R*B*|W|*2 must equal accrued dense traffic."""
        rounds, params, clients = 7, 500, 4
        accrued = sum(
            dense_exchange(params, clients).total for _ in range(rounds)
        )
        assert accrued == closed_form_cost(rounds, params, clients)

    def test_paper_cifar10_fedavg_cost(self):
        """Table 1 CIFAR-10 FedAvg: 500 rounds x 10 clients x 62k params ~ 2.48 GB."""
        total = closed_form_cost(rounds=500, params_per_round=62000, clients_per_round=10)
        assert total == pytest.approx(2.48e9, rel=0.01)

    def test_sparse_exchange_cheaper_than_dense(self):
        dense = dense_exchange(10000, 1).total
        sparse = sparse_exchange(
            kept_params=5000, total_mask_bits=10000, num_params_down=5000
        ).total
        assert sparse < dense

    def test_sparse_exchange_bit_math(self):
        traffic = sparse_exchange(kept_params=100, total_mask_bits=800, num_params_down=50)
        assert traffic.uploaded_bytes == (100 * 32 + 800) / 8
        assert traffic.downloaded_bytes == 50 * 4

    def test_mask_overhead_counted(self):
        """A fully dense sub-fedavg exchange costs MORE than FedAvg (mask bits)."""
        dense = dense_exchange(1000, 1).total
        sparse = sparse_exchange(1000, 1000, 1000).total
        assert sparse > dense

    def test_partial_exchange(self):
        traffic = partial_exchange(250, 4)
        assert traffic.total == 2 * 4 * 250 * FLOAT_BITS / 8


class TestFlops:
    def test_dense_flops_positive(self, rng):
        assert dense_conv_flops(LeNet5(rng=rng), 32) > 0

    def test_pruned_less_than_dense(self, rng):
        model = LeNet5(rng=rng)
        channels = ChannelMask(
            {"bn1": np.array([True] * 3 + [False] * 3), "bn2": np.ones(16, bool)}
        )
        assert pruned_conv_flops(model, channels, 32) < dense_conv_flops(model, 32)

    def test_reduction_factor_none_is_one(self, rng):
        assert flop_reduction_factor(LeNet5(rng=rng), None, 32) == 1.0

    def test_reduction_factor_paper_range(self, rng):
        model = LeNet5(rng=rng)
        channels = ChannelMask(
            {
                "bn1": np.array([True] * 3 + [False] * 3),
                "bn2": np.array([True] * 8 + [False] * 8),
            }
        )
        factor = flop_reduction_factor(model, channels, 32)
        assert 2.0 < factor < 3.0  # the paper reports 2.4x
