"""Wall-clock model: device pricing and time-to-accuracy."""

import numpy as np
import pytest

from repro.federated import (
    DeviceProfile,
    EDGE_PHONE,
    History,
    RASPBERRY_PI,
    RoundRecord,
    WORKSTATION,
    WallClockModel,
    compare_time_to_accuracy,
    time_to_accuracy,
)


def record(index, accuracy=None, up=1e6, down=1e6, clients=(0, 1)):
    return RoundRecord(
        round_index=index,
        sampled_clients=list(clients),
        train_loss=1.0,
        mean_accuracy=accuracy,
        uploaded_bytes=up,
        downloaded_bytes=down,
    )


def make_model(profiles=(EDGE_PHONE,), overhead=0.0):
    return WallClockModel(
        profiles=profiles,
        flops_per_example=1e6,
        examples_per_round=100,
        server_overhead_seconds=overhead,
    )


class TestDeviceProfile:
    def test_defaults_match_paper_uplink(self):
        assert EDGE_PHONE.upload_bytes_per_second == 1e6  # §4.2.2: ~1 MB/s

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(flops_per_second=0)
        with pytest.raises(ValueError):
            DeviceProfile(upload_bytes_per_second=-1)

    def test_builtin_profiles_ordered_by_speed(self):
        assert (
            RASPBERRY_PI.flops_per_second
            < EDGE_PHONE.flops_per_second
            < WORKSTATION.flops_per_second
        )


class TestWallClockModel:
    def test_client_round_seconds_decomposition(self):
        model = make_model()
        seconds = model.client_round_seconds(0, upload_bytes=1e6, download_bytes=8e6)
        compute = 3 * 1e6 * 100 / 1e9  # 0.3 s
        up = 1.0  # 1 MB at 1 MB/s
        down = 1.0  # 8 MB at 8 MB/s
        assert seconds == pytest.approx(compute + up + down)

    def test_round_robin_profile_assignment(self):
        model = make_model(profiles=(EDGE_PHONE, WORKSTATION))
        assert model.profile_for(0) is EDGE_PHONE
        assert model.profile_for(1) is WORKSTATION
        assert model.profile_for(2) is EDGE_PHONE

    def test_round_priced_by_slowest_client(self):
        model = make_model(profiles=(WORKSTATION, RASPBERRY_PI))
        fast_only = record(1, clients=[0])
        mixed = record(1, clients=[0, 1])
        assert model.round_seconds(mixed) > model.round_seconds(fast_only)

    def test_overhead_added(self):
        with_overhead = make_model(overhead=2.0)
        without = make_model(overhead=0.0)
        assert with_overhead.round_seconds(record(1)) == pytest.approx(
            without.round_seconds(record(1)) + 2.0
        )

    def test_total_seconds_accumulates(self):
        model = make_model()
        history = History(algorithm="x")
        history.append(record(1))
        history.append(record(2))
        assert model.total_seconds(history) == pytest.approx(
            2 * model.round_seconds(record(1))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            WallClockModel([], flops_per_example=1, examples_per_round=1)
        with pytest.raises(ValueError):
            WallClockModel([EDGE_PHONE], flops_per_example=0, examples_per_round=1)


class TestTimeToAccuracy:
    def make_history(self, accuracies):
        history = History(algorithm="x")
        for i, accuracy in enumerate(accuracies, start=1):
            history.append(record(i, accuracy=accuracy))
        return history

    def test_reaches_target(self):
        model = make_model()
        history = self.make_history([0.3, 0.6, 0.9])
        seconds = time_to_accuracy(history, model, target=0.55)
        assert seconds == pytest.approx(2 * model.round_seconds(record(1)))

    def test_never_reaches(self):
        model = make_model()
        history = self.make_history([0.3, 0.4])
        assert time_to_accuracy(history, model, target=0.99) is None

    def test_compare_table(self):
        model = make_model()
        table = compare_time_to_accuracy(
            {
                "fast": self.make_history([0.9]),
                "slow": self.make_history([0.1, 0.9]),
                "never": self.make_history([0.1]),
            },
            model,
            target=0.8,
        )
        assert table["fast"] < table["slow"]
        assert table["never"] is None

    def test_cheaper_uplink_means_faster_rounds(self):
        """Sub-FedAvg's smaller exchanges translate to wall-clock wins."""
        model = make_model()
        dense = record(1, up=4e6, down=4e6)
        sparse = record(1, up=2e6, down=2e6)
        assert model.round_seconds(sparse) < model.round_seconds(dense)
