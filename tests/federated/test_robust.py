"""Availability, corruption injection and robust aggregation."""

import numpy as np
import pytest

from repro.federated import (
    AvailabilityModel,
    CorruptionModel,
    FederationConfig,
    LocalTrainConfig,
    RobustFedAvg,
    make_clients,
    median_average,
    trimmed_mean_average,
)
from repro.federated.builder import model_factory


def states_of(*vectors):
    return [{"w": np.asarray(vector, dtype=np.float64)} for vector in vectors]


class TestAvailability:
    def test_zero_dropout_keeps_all(self):
        model = AvailabilityModel(0.0, seed=0)
        assert model.filter([1, 2, 3]) == [1, 2, 3]

    def test_never_empty(self):
        model = AvailabilityModel(0.95, seed=0)
        for _ in range(50):
            assert len(model.filter([4, 7])) >= 1

    def test_expected_dropout_rate(self):
        model = AvailabilityModel(0.5, seed=0)
        survived = sum(len(model.filter(list(range(10)))) for _ in range(200))
        assert survived == pytest.approx(1000, rel=0.15)

    def test_invalid_prob(self):
        with pytest.raises(ValueError):
            AvailabilityModel(1.0)


class TestCorruption:
    def test_rate_zero_never_corrupts(self):
        model = CorruptionModel(0.0, seed=0)
        state = {"w": np.ones(3)}
        assert model.maybe_corrupt(state) is state

    def test_rate_one_always_corrupts(self):
        model = CorruptionModel(1.0, scale=5.0, seed=0)
        state = {"w": np.ones(100)}
        corrupted = model.maybe_corrupt(state)
        assert not np.allclose(corrupted["w"], 1.0)
        assert corrupted["w"].std() > 1.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            CorruptionModel(1.5)


class TestRobustAggregators:
    def test_median_value(self):
        out = median_average(states_of([1.0], [100.0], [2.0]))
        np.testing.assert_allclose(out["w"], [2.0])

    def test_median_resists_one_adversary(self):
        honest = states_of([1.0, 2.0], [1.1, 2.1], [0.9, 1.9])
        adversary = states_of([1e9, -1e9])
        out = median_average(honest + adversary)
        assert np.abs(out["w"]).max() < 10.0

    def test_trimmed_mean_drops_extremes(self):
        states = states_of([0.0], [1.0], [2.0], [3.0], [1000.0])
        out = trimmed_mean_average(states, trim_fraction=0.2)
        np.testing.assert_allclose(out["w"], [2.0])

    def test_trimmed_mean_few_clients_degrades_to_mean(self):
        out = trimmed_mean_average(states_of([0.0], [4.0]), trim_fraction=0.4)
        np.testing.assert_allclose(out["w"], [2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            median_average([])
        with pytest.raises(ValueError):
            trimmed_mean_average(states_of([1.0]), trim_fraction=0.6)


class TestRobustTrainer:
    def make_trainer(self, **kwargs):
        config = FederationConfig(
            dataset="mnist", algorithm="fedavg", num_clients=6,
            n_train=240, n_test=80, seed=0,
            local=LocalTrainConfig(epochs=1, batch_size=10),
        )
        clients = make_clients(config)
        defaults = dict(
            clients=clients,
            model_fn=model_factory(config),
            rounds=2,
            sample_fraction=1.0,
            seed=0,
        )
        defaults.update(kwargs)
        return RobustFedAvg(**defaults)

    def test_runs_with_dropout_and_corruption(self):
        trainer = self.make_trainer(
            availability=AvailabilityModel(0.3, seed=1),
            corruption=CorruptionModel(0.3, seed=2),
            aggregation="median",
        )
        history = trainer.run()
        assert len(history.rounds) == 2
        assert 0.0 <= history.final_accuracy <= 1.0

    def test_median_survives_corruption_better_than_mean(self):
        """Failure injection: corrupted uploads wreck the mean, not the median."""
        results = {}
        for aggregation in ("mean", "median"):
            trainer = self.make_trainer(
                corruption=CorruptionModel(0.4, scale=25.0, seed=3),
                aggregation=aggregation,
                rounds=3,
            )
            results[aggregation] = trainer.run().final_accuracy
        assert results["median"] >= results["mean"]

    def test_dropout_reflected_in_sampled_clients(self):
        trainer = self.make_trainer(
            availability=AvailabilityModel(0.5, seed=5), aggregation="mean"
        )
        history = trainer.run()
        assert all(len(record.sampled_clients) >= 1 for record in history.rounds)

    def test_invalid_aggregation(self):
        with pytest.raises(ValueError):
            self.make_trainer(aggregation="mode")
