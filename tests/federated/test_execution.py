"""Execution-backend subsystem: tasks, backends and equivalence guarantees.

The core contract under test: serial, thread and process backends run the
same federation to the *bit-identical* History — losses, accuracies,
masks — and callbacks fire in deterministic round order regardless of how
client tasks are scheduled.
"""

import json

import numpy as np
import pytest

from repro.federated import (
    Callback,
    ClientTask,
    ClientUpdate,
    Federation,
    FederationConfig,
    LocalTrainConfig,
    ProcessBackend,
    QuantizationCompressor,
    SerialBackend,
    SpawnProcessBackend,
    ThreadBackend,
    WorkerPool,
    available_backends,
    resolve_backend,
)
from repro.federated.execution import (
    WIRE_VERSION,
    ClientSync,
    resolve_start_method,
)
from repro.pruning import MaskSet

BACKENDS = ("serial", "thread", "process")


def small_config(algorithm, backend, **overrides):
    defaults = dict(
        dataset="mnist",
        algorithm=algorithm,
        num_clients=6,
        rounds=2,
        sample_fraction=0.5,
        n_train=240,
        n_test=120,
        seed=0,
        eval_every=1,
        backend=backend,
        workers=2,
        local=LocalTrainConfig(epochs=1, batch_size=10),
    )
    defaults.update(overrides)
    return FederationConfig(**defaults)


def run_federation(algorithm, backend, **overrides):
    federation = Federation.from_config(small_config(algorithm, backend, **overrides))
    history = federation.run()
    return history, federation


def assert_histories_identical(reference, other, context=""):
    assert len(reference.rounds) == len(other.rounds), context
    for a, b in zip(reference.rounds, other.rounds):
        assert a.sampled_clients == b.sampled_clients, context
        assert a.train_loss == b.train_loss, (context, a.round_index)
        assert a.mean_accuracy == b.mean_accuracy, (context, a.round_index)
        assert a.sampled_accuracy == b.sampled_accuracy, (context, a.round_index)
        assert a.mean_sparsity == b.mean_sparsity, (context, a.round_index)
        assert a.mean_channel_sparsity == b.mean_channel_sparsity, context
        assert a.uploaded_bytes == b.uploaded_bytes, context
        assert a.downloaded_bytes == b.downloaded_bytes, context
    assert reference.final_accuracy == other.final_accuracy, context
    assert reference.final_per_client_accuracy == other.final_per_client_accuracy


class TestBackendResolution:
    def test_available_backends(self):
        assert set(available_backends()) == {
            "serial", "thread", "process", "process-spawn",
        }

    def test_resolve_by_name(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread", workers=3), ThreadBackend)
        assert isinstance(resolve_backend("process", workers=2), ProcessBackend)

    def test_resolve_passthrough_and_none(self):
        backend = ThreadBackend(workers=2)
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_backend("gpu-cluster")

    def test_worker_defaults(self):
        assert ThreadBackend(workers=0).workers >= 1
        assert ThreadBackend(workers=5).workers == 5


class TestClientTask:
    def test_validates_kind_and_load(self):
        with pytest.raises(ValueError):
            ClientTask(client_index=0, kind="dance")
        with pytest.raises(ValueError):
            ClientTask(client_index=0, load="everything")
        with pytest.raises(ValueError):
            ClientTask(client_index=0, load="partial")  # shared_names missing

    def test_tasks_are_picklable(self):
        import pickle

        task = ClientTask(
            client_index=3, kind="train", load="partial", shared_names=("fc3.weight",)
        )
        assert pickle.loads(pickle.dumps(task)) == task


class TestConfigPlumbing:
    def test_backend_round_trips_through_json(self):
        config = small_config("fedavg", "thread")
        restored = FederationConfig.from_json(config.to_json())
        assert restored == config
        assert restored.backend == "thread"
        assert restored.workers == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            small_config("fedavg", "quantum")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            small_config("fedavg", "thread", workers=-1)

    def test_trainer_carries_backend(self):
        _, federation = run_federation("standalone", "thread", rounds=1, eval_every=0)
        assert isinstance(federation.trainer.backend, ThreadBackend)
        assert federation.trainer.backend.workers == 2


class TestBackendEquivalence:
    """Serial vs thread vs process runs produce identical histories."""

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_fedavg_history_identical(self, backend):
        reference, ref_fed = run_federation("fedavg", "serial")
        candidate, cand_fed = run_federation("fedavg", backend)
        assert_histories_identical(reference, candidate, f"fedavg/{backend}")
        for name in ref_fed.trainer.global_state:
            assert np.array_equal(
                ref_fed.trainer.global_state[name],
                cand_fed.trainer.global_state[name],
            ), name

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_subfedavg_history_and_masks_identical(self, backend):
        reference, ref_fed = run_federation("sub-fedavg-un", "serial")
        candidate, cand_fed = run_federation("sub-fedavg-un", backend)
        assert_histories_identical(reference, candidate, f"sub-fedavg/{backend}")
        for ref_client, cand_client in zip(ref_fed.clients, cand_fed.clients):
            assert ref_client.mask == cand_client.mask
            assert (
                ref_client.controller.un_rate == cand_client.controller.un_rate
            )

    @pytest.mark.parametrize(
        "algorithm", ("lg-fedavg", "mtl", "standalone", "fedavg-ft")
    )
    def test_remaining_trainers_thread_identical(self, algorithm):
        reference, _ = run_federation(algorithm, "serial")
        candidate, _ = run_federation(algorithm, "thread")
        assert_histories_identical(reference, candidate, f"{algorithm}/thread")


class RecordingCallback(Callback):
    def __init__(self):
        self.events = []

    def on_run_start(self, trainer):
        self.events.append(("run_start", None))

    def on_round_start(self, trainer, round_index, sampled):
        self.events.append(("round_start", round_index))

    def on_evaluate(self, trainer, round_index, accuracy):
        self.events.append(("evaluate", round_index))

    def on_round_end(self, trainer, round_index, record):
        self.events.append(("round_end", round_index))

    def on_run_end(self, trainer, history):
        self.events.append(("run_end", None))


class TestCallbackOrdering:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_callbacks_fire_in_round_order(self, backend):
        callback = RecordingCallback()
        federation = Federation.from_config(small_config("fedavg", backend))
        federation.run(callbacks=[callback])
        assert callback.events == [
            ("run_start", None),
            ("round_start", 1),
            ("evaluate", 1),
            ("round_end", 1),
            ("round_start", 2),
            ("evaluate", 2),
            ("round_end", 2),
            ("run_end", None),
        ]


class TestSideEffectFreeEvaluation:
    """Mid-run evaluate_all must not clobber client-local models."""

    @pytest.mark.parametrize("algorithm", ("fedavg", "fedavg-ft", "sub-fedavg-un"))
    def test_evaluate_all_preserves_client_state(self, algorithm):
        federation = Federation.from_config(
            small_config(algorithm, "serial", rounds=1, eval_every=0)
        )
        trainer = federation.trainer
        trainer._round(1, trainer.sampler.sample())
        before = [client.state_dict() for client in federation.clients]
        rng_before = [client.rng_state() for client in federation.clients]
        trainer.evaluate_all()
        for client, state, rng in zip(federation.clients, before, rng_before):
            after = client.state_dict()
            for name in state:
                assert np.array_equal(state[name], after[name]), (
                    algorithm,
                    client.client_id,
                    name,
                )
            assert client.rng_state() == rng

    def test_evaluate_all_deterministic_repeat(self):
        federation = Federation.from_config(
            small_config("fedavg-ft", "serial", rounds=1, eval_every=0)
        )
        trainer = federation.trainer
        trainer._round(1, trainer.sampler.sample())
        assert trainer.evaluate_all() == trainer.evaluate_all()


class TestStragglerWeighting:
    """A client that did no local work must not drag the average."""

    def test_zero_epoch_client_reports_zero_examples(self):
        federation = Federation.from_config(
            small_config("fedavg", "serial", rounds=1, eval_every=0)
        )
        client = federation.clients[0]
        result = client.train_local(epochs=0)
        assert result.num_examples == 0

    def test_num_examples_counts_work_done(self):
        federation = Federation.from_config(
            small_config("fedavg", "serial", rounds=1, eval_every=0)
        )
        client = federation.clients[0]
        result = client.train_local(epochs=3)
        assert result.num_examples == 3 * len(client.data.train)

    def test_zero_epoch_straggler_excluded_from_average(self):
        class ZeroFirst:
            """Straggler model granting client 0 no epochs at all."""

            def epochs_for(self, client_index):
                return 0 if client_index == 0 else 2

        from repro.federated.builder import make_clients, model_factory
        from repro.federated.trainers.fedavg import FedAvg

        config = small_config("fedavg", "serial", rounds=1, eval_every=0)
        clients = make_clients(config)
        trainer = FedAvg(
            clients,
            model_factory(config),
            rounds=1,
            sample_fraction=1.0,
            seed=0,
            stragglers=ZeroFirst(),
        )
        stale = clients[0].state_dict()
        trainer._round(1, list(range(len(clients))))

        # Recompute the expected average from the workers only.
        worked = [clients[i] for i in range(1, len(clients))]
        expected = np.mean(
            [c.state_dict()["conv1.weight"] for c in worked], axis=0
        )
        # Uniform data sizes and epochs: average of the workers' states.
        assert np.allclose(trainer.global_state["conv1.weight"], expected)
        assert not np.allclose(trainer.global_state["conv1.weight"], stale["conv1.weight"])


class TestWireSchema:
    """ClientTask/ClientUpdate versioned wire serialization."""

    def test_task_roundtrip(self):
        task = ClientTask(
            client_index=3, kind="evaluate", load="partial",
            shared_names=("fc3.weight", "fc3.bias"),
            anchor_global=True, epochs=2, restore=True, want_trajectory=True,
        )
        wire = task.to_wire()
        assert wire["schema"] == WIRE_VERSION
        assert ClientTask.from_wire(wire) == task
        # JSON round-trip (what the HTTP protocol actually does).
        assert ClientTask.from_wire(json.loads(json.dumps(wire))) == task

    def test_task_rejects_unknown_schema(self):
        wire = ClientTask(client_index=0).to_wire()
        wire["schema"] = 99
        with pytest.raises(ValueError):
            ClientTask.from_wire(wire)

    def test_update_roundtrip_bitwise(self):
        rng = np.random.default_rng(0)
        update = ClientUpdate(
            client_index=1, client_id=1,
            state={"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)},
            mask=MaskSet({"w": (rng.random((4, 3)) < 0.5).astype(float)}),
            num_examples=40, mean_loss=1.25, val_accuracy=0.5,
            pruned_unstructured=True, accuracy=0.75, sparsity=0.3,
        )
        wire = json.loads(json.dumps(update.to_wire()))
        again = ClientUpdate.from_wire(wire)
        assert again.client_id == 1 and again.num_examples == 40
        assert again.mean_loss == 1.25 and again.accuracy == 0.75
        assert again.pruned_unstructured and not again.pruned_structured
        for name in update.state:
            np.testing.assert_array_equal(again.state[name], update.state[name])
        np.testing.assert_array_equal(again.mask["w"], update.mask["w"])

    def test_update_eval_only_payload(self):
        update = ClientUpdate(client_index=2, client_id=2, accuracy=0.5)
        again = ClientUpdate.from_wire(update.to_wire())
        assert again.state is None and again.mask is None
        assert again.accuracy == 0.5

    def test_update_sync_stays_off_the_wire(self):
        update = ClientUpdate(
            client_index=0, client_id=0, state={"w": np.zeros(2)},
            sync=ClientSync(model_state={}, rng_state={}),
        )
        wire = update.to_wire()
        assert "sync" not in wire
        assert ClientUpdate.from_wire(wire).sync is None

    def test_update_codec_parameter(self):
        rng = np.random.default_rng(1)
        state = {"w": rng.normal(size=(8, 8))}
        update = ClientUpdate(client_index=0, client_id=0, state=state)
        wire = update.to_wire(codec=QuantizationCompressor(bits=8))
        assert wire["state"]["codec"] == "quantize"
        decoded = ClientUpdate.from_wire(wire)  # header-dispatched decode
        expected, _ = QuantizationCompressor(bits=8).roundtrip(state)
        np.testing.assert_array_equal(decoded.state["w"], expected["w"])


class TestWorkerPool:
    def test_persists_across_maps(self):
        pool = WorkerPool(workers=2)
        try:
            first = pool.map(_square, [1, 2, 3])
            inner = pool._pool
            second = pool.map(_square, [4, 5])
            assert first == [1, 4, 9] and second == [16, 25]
            assert pool._pool is inner  # same pool object: workers reused
        finally:
            pool.close()
        assert pool._pool is None

    def test_empty_map_never_spawns(self):
        pool = WorkerPool(workers=2)
        assert pool.map(_square, []) == []
        assert pool._pool is None

    def test_context_manager_closes(self):
        with WorkerPool(workers=1) as pool:
            assert pool.map(_square, [3]) == [9]
        assert pool._pool is None

    def test_unpicklable_payload_clear_error(self):
        with WorkerPool(workers=1) as pool:
            with pytest.raises(RuntimeError, match="pickle"):
                pool.map(_square, [lambda: None])

    def test_resolve_start_method(self):
        assert resolve_start_method(None) in ("fork", "spawn")
        assert resolve_start_method("spawn") == "spawn"
        with pytest.raises(RuntimeError, match="unavailable"):
            resolve_start_method("not-a-method")


def _square(value):
    return value * value


class TestSpawnBackend:
    """The spawn-safe process path: same histories, no fork dependency."""

    def test_registered_and_resolvable(self):
        backend = resolve_backend("process-spawn", workers=2)
        assert isinstance(backend, SpawnProcessBackend)
        assert backend.start_method == "spawn"

    def test_explicit_start_method_plumbs_through(self):
        assert ProcessBackend(workers=1, start_method="spawn").start_method == "spawn"

    def test_spawn_history_identical_to_serial(self):
        reference, _ = run_federation("fedavg", "serial", rounds=1)
        candidate, cand_fed = run_federation("fedavg", "process-spawn", rounds=1)
        assert_histories_identical(reference, candidate, "fedavg/process-spawn")
        backend = cand_fed.trainer.backend
        assert backend.start_method == "spawn"
        assert backend.pool._pool is not None  # persistent: still warm
        backend.close()

    def test_fork_backend_skips_the_persistent_pool(self):
        """Fork batches inherit state in ephemeral pools: no payload
        shipping, and the persistent (spawn-path) pool never starts."""
        if resolve_start_method(None) != "fork":
            pytest.skip("platform has no fork")
        _, federation = run_federation("fedavg", "process")
        backend = federation.trainer.backend
        assert backend.pool._pool is None
        backend.close()
