"""FederatedClient behaviour and client sampling."""

import numpy as np
import pytest

from repro.data import ArrayDataset, Subset
from repro.data.partition import ClientData
from repro.federated import ClientSampler, FederatedClient, FixedSampler, LocalTrainConfig
from repro.models import MLP
from repro.pruning import PruningController, UnstructuredConfig


def make_client(rng, epochs=2, config_kwargs=None, count=40):
    images = rng.normal(size=(count, 1, 4, 4))
    labels = rng.integers(0, 2, size=count)
    images[labels == 0, 0, 0, :] += 2.5
    images[labels == 1, 0, 2, :] += 2.5
    dataset = ArrayDataset(images, labels)
    indices = np.arange(count)
    data = ClientData(
        client_id=0,
        train=Subset(dataset, indices[: count - 10]),
        val=Subset(dataset, indices[count - 10 : count - 5]),
        test=Subset(dataset, indices[count - 5 :]),
        labels=np.array([0, 1]),
    )
    kwargs = dict(lr=0.1, momentum=0.5, epochs=epochs, batch_size=8)
    kwargs.update(config_kwargs or {})
    model_fn = lambda: MLP(16, 2, hidden=(8,), rng=np.random.default_rng(7))
    return FederatedClient(data, model_fn, LocalTrainConfig(**kwargs))


class TestLocalTraining:
    def test_loss_decreases(self, rng):
        client = make_client(rng, epochs=1)
        first = client.train_local().mean_loss
        for _ in range(4):
            last = client.train_local().mean_loss
        assert last < first

    def test_result_counts_examples(self, rng):
        """num_examples reflects the work actually done: epochs × dataset."""
        client = make_client(rng)  # configured for 2 local epochs
        result = client.train_local()
        assert result.num_examples == 2 * len(client.data.train)
        assert client.train_local(epochs=1).num_examples == len(client.data.train)
        assert client.train_local(epochs=0).num_examples == 0

    def test_learns_separable_task(self, rng):
        client = make_client(rng, epochs=10)
        client.train_local()
        assert client.test_accuracy() >= 0.6

    def test_evaluate_empty_dataset(self, rng):
        client = make_client(rng)
        empty = Subset(client.data.train.base, [])
        assert client.evaluate(empty) == 0.0

    def test_load_global_roundtrip(self, rng):
        client = make_client(rng)
        state = client.state_dict()
        client.train_local()
        client.load_global(state)
        for name, value in client.state_dict().items():
            np.testing.assert_array_equal(value, state[name])

    def test_load_partial_updates_named_only(self, rng):
        client = make_client(rng)
        original = client.state_dict()
        incoming = {k: v + 1.0 for k, v in original.items()}
        client.load_partial(incoming, ["fc1.weight"])
        state = client.state_dict()
        np.testing.assert_array_equal(state["fc1.weight"], incoming["fc1.weight"])
        np.testing.assert_array_equal(state["fc2.weight"], original["fc2.weight"])

    def test_anchor_pulls_weights(self, rng):
        """With a strong proximal coefficient, weights stay near the anchor.

        The coefficient must keep lr*mu < 1 or the proximal step itself
        diverges; 1.0 with lr 0.1 gives a stable contraction.
        """
        free = make_client(rng, epochs=3)
        anchored = make_client(rng, epochs=3, config_kwargs={"prox_mu": 1.0})
        anchor = anchored.state_dict()
        anchored.set_anchor(anchor)
        free_start = free.state_dict()
        free.train_local()
        anchored.train_local()
        free_drift = sum(
            np.abs(v - free_start[k]).sum() for k, v in free.state_dict().items()
        )
        anchored_drift = sum(
            np.abs(v - anchor[k]).sum() for k, v in anchored.state_dict().items()
        )
        assert anchored_drift < free_drift

    def test_invalid_epochs_config(self):
        with pytest.raises(ValueError):
            LocalTrainConfig(epochs=0)


class TestClientPruning:
    def test_mask_respected_during_training(self, rng):
        client = make_client(rng, epochs=2)
        controller = PruningController(
            client.model,
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.5, epsilon=0.0),
        )
        client.attach_controller(controller)
        client.train_local()  # commits a mask
        assert client.controller.unstructured_sparsity() > 0.0
        mask = client.mask
        client.train_local()  # trains under the committed mask
        for name in mask.names():
            pruned = mask[name] == 0
            values = client.state_dict()[name][pruned]
            np.testing.assert_allclose(values, 0.0)

    def test_val_accuracy_reported(self, rng):
        client = make_client(rng)
        controller = PruningController(
            client.model, unstructured=UnstructuredConfig()
        )
        client.attach_controller(controller)
        result = client.train_local()
        assert result.val_accuracy is not None

    def test_foreign_controller_rejected(self, rng):
        client = make_client(rng)
        other_model = MLP(16, 2, hidden=(8,), rng=rng)
        controller = PruningController(
            other_model, unstructured=UnstructuredConfig()
        )
        with pytest.raises(ValueError):
            client.attach_controller(controller)

    def test_mask_none_without_controller(self, rng):
        assert make_client(rng).mask is None


class TestSamplers:
    def test_sample_size(self):
        sampler = ClientSampler(100, sample_fraction=0.1, seed=0)
        assert sampler.clients_per_round == 10
        assert len(sampler.sample()) == 10

    def test_at_least_one_client(self):
        sampler = ClientSampler(5, sample_fraction=0.01, seed=0)
        assert sampler.clients_per_round == 1

    def test_no_replacement(self):
        sampler = ClientSampler(20, sample_fraction=0.5, seed=0)
        sample = sampler.sample()
        assert len(sample) == len(set(sample))

    def test_deterministic_given_seed(self):
        a = ClientSampler(50, 0.2, seed=3).sample()
        b = ClientSampler(50, 0.2, seed=3).sample()
        assert a == b

    def test_varies_across_rounds(self):
        sampler = ClientSampler(100, 0.1, seed=0)
        assert sampler.sample() != sampler.sample()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ClientSampler(0)
        with pytest.raises(ValueError):
            ClientSampler(10, sample_fraction=0.0)
        with pytest.raises(ValueError):
            ClientSampler(10, sample_fraction=1.5)

    def test_fixed_sampler(self):
        sampler = FixedSampler([3, 1, 4])
        assert sampler.sample() == [1, 3, 4]
        assert sampler.clients_per_round == 3

    def test_fixed_sampler_empty_raises(self):
        with pytest.raises(ValueError):
            FixedSampler([])
