"""Async-carry fidelity: carried deliveries replay upload-time snapshots.

Under the async-buffer policy a client's upload can land rounds after it
was produced.  The server must aggregate *what was uploaded*, not
whatever the live client object happens to hold when the arrival lands —
restarts, pool evictions/rebuilds and evaluation passes all mutate the
live object in between.  These are regression tests for the historical
bug where the carried branch read ``self.clients[id].state_dict()`` at
delivery time.
"""

import numpy as np

from repro.federated import (
    ClientTask,
    Federation,
    FederationConfig,
    LocalTrainConfig,
    SubFedAvgUn,
    SystemsConfig,
    fedavg_average,
    make_clients,
    model_factory,
)
from repro.federated.trainers.fedavg import FedAvg
from repro.systems import Delivery, RoundPlan


def tiny_config(**overrides):
    base = dict(
        dataset="mnist",
        algorithm="fedavg",
        num_clients=4,
        rounds=2,
        sample_fraction=0.5,
        seed=0,
        n_train=160,
        n_test=80,
        local=LocalTrainConfig(epochs=1, batch_size=10),
    )
    base.update(overrides)
    return FederationConfig(**base)


def plan(round_index, started, deliveries, busy=(), stragglers=()):
    return RoundPlan(
        round_index=round_index,
        start=0.0,
        sampled=tuple(started) + tuple(busy),
        started=tuple(started),
        busy=tuple(busy),
        deliveries=tuple(deliveries),
        stragglers=tuple(stragglers),
        close_seconds=1.0,
        round_seconds=1.5,
    )


def train_task(index):
    return ClientTask(client_index=index, kind="train", load="global")


def states_equal(a, b):
    return all(np.array_equal(a[key], b[key]) for key in a)


class TestFedAvgCarriedDeliveries:
    def make_trainer(self):
        config = tiny_config()
        clients = make_clients(config)
        return FedAvg(clients, model_factory(config), rounds=2)

    def test_carried_delivery_replays_upload_time_state(self):
        trainer = self.make_trainer()
        # Round 1: client 0 uploads but the round closes without it — the
        # policy says its arrival lands next round.
        trainer.round_plan = plan(1, started=(0,), deliveries=(), stragglers=(0,))
        (update,) = trainer.execute([train_task(0)])
        trainer._aggregate([update])
        held = {key: value.copy() for key, value in update.state.items()}
        examples = update.num_examples

        # The live client moves on before the arrival lands.
        trainer.clients[0].train_local(epochs=1)
        live = trainer.clients[0].state_dict()
        assert not states_equal(live, held)

        # Round 2: the carried arrival is delivered, staleness-discounted.
        delivery = Delivery(client_id=0, round_started=1, staleness=1, weight=0.5)
        trainer.round_plan = plan(2, started=(), deliveries=(delivery,), busy=(0,))
        trainer._aggregate([])
        expected = fedavg_average([held], [examples * delivery.weight])
        assert states_equal(trainer.global_state, expected)
        assert not states_equal(trainer.global_state, fedavg_average([live], [1.0]))
        # The held snapshot is consumed exactly once.
        assert trainer._held_updates == {}

    def test_delivered_update_clears_any_stale_snapshot(self):
        trainer = self.make_trainer()
        trainer.round_plan = plan(1, started=(0,), deliveries=(), stragglers=(0,))
        (update,) = trainer.execute([train_task(0)])
        trainer._aggregate([update])
        assert 0 in trainer._held_updates
        # The client restarts and its *new* upload is delivered on time:
        # the old snapshot must not linger for a later phantom arrival.
        trainer.round_plan = plan(
            2, started=(0,), deliveries=(Delivery(0, 2, 0, 1.0),)
        )
        (fresh,) = trainer.execute([train_task(0)])
        trainer._aggregate([fresh])
        assert trainer._held_updates == {}

    def test_posthoc_replay_without_snapshot_falls_back_to_live_state(self):
        trainer = self.make_trainer()
        delivery = Delivery(client_id=1, round_started=1, staleness=1, weight=1.0)
        trainer.round_plan = plan(2, started=(), deliveries=(delivery,), busy=(1,))
        trainer._aggregate([])  # no held snapshot: must not crash
        live = trainer.clients[1].state_dict()
        assert states_equal(trainer.global_state, fedavg_average([live], [1.0]))


class TestSubFedAvgCarriedDeliveries:
    def make_trainer(self):
        config = tiny_config(algorithm="sub-fedavg-un")
        clients = make_clients(config)
        return SubFedAvgUn(clients, model_factory(config), rounds=2)

    def test_carried_delivery_replays_upload_time_state_and_mask(self):
        trainer = self.make_trainer()
        trainer.round_plan = plan(1, started=(0,), deliveries=(), stragglers=(0,))
        (update,) = trainer.execute([train_task(0)])
        trainer._delivered_states([update])
        held_state = {key: value.copy() for key, value in update.state.items()}
        held_mask = update.mask

        trainer.clients[0].train_local(epochs=1)
        assert not states_equal(trainer.clients[0].state_dict(), held_state)

        delivery = Delivery(client_id=0, round_started=1, staleness=1, weight=0.5)
        trainer.round_plan = plan(2, started=(), deliveries=(delivery,), busy=(0,))
        states, masks = trainer._delivered_states([])
        assert len(states) == 1 and states_equal(states[0], held_state)
        assert masks[0] is held_mask
        assert trainer._held_states == {}


class TestAsyncRunsUnderEviction:
    """End to end: async carries + pool evictions must not perturb results."""

    def run(self, client_cache):
        config = tiny_config(
            num_clients=6,
            rounds=4,
            n_train=240,
            n_test=120,
            client_cache=client_cache,
            scenario={"profiles": ("edge-phone", "raspberry-pi")},
            systems=SystemsConfig(
                round_policy="async-buffer",
                buffer_size=1,
                flops_per_example=1e6,
                examples_per_round=100.0,
            ),
        )
        return Federation.from_config(config).run()

    def test_histories_identical_across_cache_sizes(self):
        unbounded = self.run(client_cache=0)
        thrashing = self.run(client_cache=1)
        assert thrashing.final_accuracy == unbounded.final_accuracy
        assert (
            thrashing.final_per_client_accuracy
            == unbounded.final_per_client_accuracy
        )
        assert [r.train_loss for r in thrashing.rounds] == [
            r.train_loss for r in unbounded.rounds
        ]
