"""Confusion matrices, per-class accuracy and fairness reports."""

import numpy as np
import pytest

from repro.federated import (
    FairnessReport,
    History,
    confusion_matrix,
    fairness_report,
    model_confusion,
    per_class_accuracy,
)


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix(
            predictions=np.array([0, 1, 1, 2]),
            targets=np.array([0, 1, 2, 2]),
            num_classes=3,
        )
        expected = np.array([[1, 0, 0], [0, 1, 0], [0, 1, 1]])
        np.testing.assert_array_equal(matrix, expected)

    def test_total_preserved(self, rng):
        predictions = rng.integers(0, 5, size=100)
        targets = rng.integers(0, 5, size=100)
        matrix = confusion_matrix(predictions, targets, 5)
        assert matrix.sum() == 100

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3, dtype=int), np.zeros(4, dtype=int), 2)

    def test_per_class_accuracy(self):
        matrix = np.array([[8, 2], [5, 5]])
        accuracy = per_class_accuracy(matrix)
        np.testing.assert_allclose(accuracy, [0.8, 0.5])

    def test_absent_class_is_nan(self):
        matrix = np.array([[3, 0], [0, 0]])
        accuracy = per_class_accuracy(matrix)
        assert accuracy[0] == 1.0
        assert np.isnan(accuracy[1])

    def test_model_confusion_runs(self, rng, tiny_cnn, blob_dataset):
        matrix = model_confusion(tiny_cnn, blob_dataset, num_classes=3)
        assert matrix.shape == (3, 3)
        assert matrix.sum() == len(blob_dataset)


class TestFairnessReport:
    def test_summary_values(self):
        report = FairnessReport.from_accuracies({0: 0.2, 1: 0.8, 2: 1.0, 3: 0.4})
        assert report.mean == pytest.approx(0.6)
        assert report.minimum == 0.2
        assert report.maximum == 1.0
        assert report.below_half == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FairnessReport.from_accuracies({})

    def test_from_history(self):
        history = History(algorithm="x")
        history.final_per_client_accuracy = {0: 0.9, 1: 0.3}
        report = fairness_report(history)
        assert report.below_half == 1

    def test_describe_is_readable(self):
        report = FairnessReport.from_accuracies({0: 0.5})
        text = report.describe()
        assert "mean=" in text and "clients<50%" in text
