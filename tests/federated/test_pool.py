"""Virtual clients: the ClientPool must be invisible to training results.

Two families of guarantees:

* mechanics — lazy materialization, LRU eviction, dirty-only spills, the
  state stores, pinning during concurrent execution;
* equivalence — a federation trained through a pool (any capacity, any
  store, any backend) produces *bit-identical* histories to one trained
  on eagerly constructed clients, including stateful algorithms whose
  masks and data order must survive eviction.
"""

import os

import numpy as np
import pytest

from repro.federated import (
    ClientPool,
    Federation,
    FederationConfig,
    FileStateStore,
    LocalTrainConfig,
    MemoryStateStore,
    make_clients,
    make_state_store,
)


def tiny_config(**overrides):
    base = dict(
        dataset="mnist",
        algorithm="fedavg",
        num_clients=6,
        rounds=2,
        sample_fraction=0.5,
        seed=0,
        eval_every=1,
        n_train=240,
        n_test=120,
        local=LocalTrainConfig(epochs=1, batch_size=10),
    )
    base.update(overrides)
    return FederationConfig(**base)


def pool_for(config):
    clients = make_clients(config)
    assert isinstance(clients, ClientPool)
    return clients


def history_fingerprint(history):
    return (
        history.final_accuracy,
        tuple(sorted(history.final_per_client_accuracy.items())),
        tuple(r.train_loss for r in history.rounds),
        tuple(r.mean_accuracy for r in history.rounds),
    )


class TestPoolMechanics:
    def test_lazy_materialization_and_lru_eviction(self):
        pool = pool_for(tiny_config(client_cache=2))
        assert pool.live_count == 0 and pool.materializations == 0
        first = pool[0]
        assert first.client_id == 0
        pool[1]
        assert pool.live_count == 2 and pool.evictions == 0
        pool[2]  # capacity 2: client 0 (least recently used) is evicted
        assert pool.live_count == 2 and pool.evictions == 1
        # An untrained client spills nothing — rebuilding is free.
        assert pool.spills == 0
        rebuilt = pool[0]
        assert rebuilt is not first
        assert rebuilt.client_id == 0

    def test_zero_capacity_never_evicts(self):
        pool = pool_for(tiny_config(client_cache=0))
        for index in range(len(pool)):
            pool[index]
        assert pool.live_count == len(pool)
        assert pool.evictions == 0

    def test_trained_client_state_survives_eviction(self):
        pool = pool_for(tiny_config(client_cache=1))
        client = pool[3]
        client.train_local(epochs=1)
        trained = {k: v.copy() for k, v in client.model.state_dict().items()}
        rng_after = client.rng_state()
        pool[4]  # evicts (and spills) client 3
        assert pool.spills == 1
        restored = pool[3]
        assert restored is not client
        for name, value in restored.model.state_dict().items():
            assert np.array_equal(value, trained[name])
        # The data-order stream resumes exactly where training left it.
        assert restored.rng_state() == rng_after

    def test_restored_client_stays_dirty_on_reeviction(self):
        """A restored client must keep its store entry alive even if it
        does no further work — forgetting it would resurrect the fresh
        initial state on the next materialization."""
        pool = pool_for(tiny_config(client_cache=1))
        pool[0].train_local(epochs=1)
        pool[1]  # spill 0
        pool[0]  # restore 0 (no new training)
        pool[1]  # evict 0 again
        assert int(0) in pool.store
        trained = pool[0].model.state_dict()
        fresh = pool.build(0).model.state_dict()
        assert any(
            not np.array_equal(trained[name], fresh[name]) for name in trained
        )

    def test_pinned_clients_survive_capacity_pressure(self):
        pool = pool_for(tiny_config(client_cache=1))
        with pool.pinned([0, 1, 2]):
            kept = [pool[0], pool[1], pool[2]]
            assert pool.live_count == 3  # grown past capacity, nothing evicted
            assert all(pool[i] is client for i, client in enumerate(kept))
        assert pool.live_count == 1  # back under the cap on exit

    def test_index_resolves_even_after_eviction(self):
        pool = pool_for(tiny_config(client_cache=1))
        client = pool[2]
        pool[3]  # evict 2
        assert pool.index(client) == 2
        with pytest.raises(ValueError):
            pool_for(tiny_config(client_cache=1)).index(client)

    def test_setup_hooks_apply_to_live_and_future_clients(self):
        pool = pool_for(tiny_config(client_cache=0))
        live = pool[0]
        seen = []
        pool.add_setup_hook(lambda client: seen.append(int(client.client_id)))
        assert seen == [0]  # applied to already-live clients immediately
        pool[1]
        assert seen == [0, 1]
        assert live is pool[0]

    def test_negative_and_out_of_range_indexing(self):
        pool = pool_for(tiny_config())
        assert pool[-1].client_id == len(pool) - 1
        with pytest.raises(IndexError):
            pool[len(pool)]
        assert [c.client_id for c in pool[1:3]] == [1, 2]


class TestStateStores:
    def test_memory_store_roundtrip(self):
        store = MemoryStateStore()
        assert store.load(5) is None and 5 not in store
        store.save(5, {"x": 1})
        assert store.load(5) == {"x": 1} and 5 in store and len(store) == 1

    def test_file_store_roundtrip_and_sharding(self):
        store = FileStateStore()
        payload = {"weights": np.arange(4.0), "nested": {"rng": (1, 2)}}
        store.save(3, payload)
        store.save(3 + FileStateStore.SHARD, {"other": True})
        loaded = store.load(3)
        assert np.array_equal(loaded["weights"], payload["weights"])
        assert loaded["nested"] == payload["nested"]
        shards = sorted(os.listdir(store.root))
        assert shards == ["shard-00000", "shard-00001"]
        root = store.root
        store.close()
        assert not os.path.exists(root)

    def test_make_state_store_rejects_unknown_kind(self):
        assert isinstance(make_state_store("memory"), MemoryStateStore)
        assert isinstance(make_state_store("file"), FileStateStore)
        with pytest.raises(ValueError, match="unknown state store"):
            make_state_store("redis")

    def test_config_validates_pool_fields(self):
        with pytest.raises(ValueError, match="client_cache"):
            tiny_config(client_cache=-1)
        with pytest.raises(ValueError, match="state store"):
            tiny_config(state_store="redis")


class TestPoolEquivalence:
    """Capacity, store and backend must never change training results."""

    def run(self, **overrides):
        return Federation.from_config(tiny_config(**overrides)).run()

    @pytest.mark.parametrize("algorithm", ["fedavg", "sub-fedavg-un"])
    def test_tight_cache_matches_unbounded(self, algorithm):
        unbounded = self.run(algorithm=algorithm, client_cache=0)
        thrashing = self.run(algorithm=algorithm, client_cache=2)
        assert history_fingerprint(thrashing) == history_fingerprint(unbounded)

    def test_file_store_matches_memory_store(self):
        memory = self.run(
            algorithm="sub-fedavg-un", client_cache=2, state_store="memory"
        )
        spilled = self.run(
            algorithm="sub-fedavg-un", client_cache=2, state_store="file"
        )
        assert history_fingerprint(spilled) == history_fingerprint(memory)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match_serial_under_eviction(self, backend):
        serial = self.run(client_cache=2, backend="serial")
        parallel = self.run(client_cache=2, backend=backend, workers=2)
        assert history_fingerprint(parallel) == history_fingerprint(serial)
