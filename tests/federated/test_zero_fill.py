"""The zero-filling aggregation ablation baseline."""

import numpy as np
import pytest

from repro.federated import zero_fill_average
from repro.pruning import MaskSet


class TestZeroFillAverage:
    def test_divides_by_client_count(self):
        states = [{"w": np.array([6.0])}, {"w": np.array([0.0])}]
        masks = [MaskSet({"w": np.array([1])}), MaskSet({"w": np.array([0])})]
        out = zero_fill_average(states, masks, {"w": np.zeros(1)})
        # Intersection average would give 6.0; zero-fill gives 3.0.
        np.testing.assert_allclose(out["w"], [3.0])

    def test_equals_fedavg_with_dense_masks(self):
        states = [{"w": np.array([2.0, 4.0])}, {"w": np.array([6.0, 8.0])}]
        dense = MaskSet({"w": np.ones(2)})
        out = zero_fill_average(states, [dense, dense], {"w": np.zeros(2)})
        np.testing.assert_allclose(out["w"], [4.0, 6.0])

    def test_shrinks_rarely_kept_coordinates(self):
        """The failure mode motivating Sub-FedAvg's intersection rule."""
        keeper_value = 10.0
        states = [{"w": np.array([keeper_value])}] + [
            {"w": np.array([0.0])} for _ in range(9)
        ]
        masks = [MaskSet({"w": np.array([1])})] + [
            MaskSet({"w": np.array([0])}) for _ in range(9)
        ]
        out = zero_fill_average(states, masks, {"w": np.zeros(1)})
        assert out["w"][0] == pytest.approx(1.0)  # dragged toward zero

    def test_validation(self):
        with pytest.raises(ValueError):
            zero_fill_average([], [], {"w": np.zeros(1)})
        with pytest.raises(ValueError):
            zero_fill_average([{"w": np.zeros(1)}], [], {"w": np.zeros(1)})


class TestTrainerIntegration:
    def test_invalid_aggregator_rejected(self):
        from repro.federated import FederationConfig, LocalTrainConfig, make_clients
        from repro.federated.builder import model_factory
        from repro.federated.trainers.subfedavg import SubFedAvgUn

        config = FederationConfig(
            dataset="mnist", algorithm="sub-fedavg-un", num_clients=2,
            n_train=80, n_test=40, local=LocalTrainConfig(epochs=1),
        )
        clients = make_clients(config)
        with pytest.raises(ValueError, match="aggregator"):
            SubFedAvgUn(
                clients, model_factory(config), rounds=1, aggregator="bogus"
            )

    def test_zerofill_trainer_runs(self):
        from repro.federated import FederationConfig, LocalTrainConfig, make_clients
        from repro.federated.builder import model_factory
        from repro.federated.trainers.subfedavg import SubFedAvgUn
        from repro.pruning import UnstructuredConfig

        config = FederationConfig(
            dataset="mnist", algorithm="sub-fedavg-un", num_clients=2,
            n_train=80, n_test=40, local=LocalTrainConfig(epochs=1),
        )
        clients = make_clients(config)
        trainer = SubFedAvgUn(
            clients,
            model_factory(config),
            rounds=1,
            sample_fraction=1.0,
            unstructured=UnstructuredConfig(target_rate=0.3, step=0.3, epsilon=0.0),
            aggregator="zerofill",
        )
        history = trainer.run()
        assert 0.0 <= history.final_accuracy <= 1.0
