"""FedAvg+fine-tune personalization and straggler (system heterogeneity) support."""

import numpy as np
import pytest

from repro.federated import (
    FedAvg,
    FedAvgFinetune,
    FederationConfig,
    LocalTrainConfig,
    StragglerModel,
    make_clients,
)
from repro.federated.builder import model_factory


def make_config(**overrides):
    defaults = dict(
        dataset="mnist", algorithm="fedavg", num_clients=6,
        n_train=240, n_test=120, seed=0,
        local=LocalTrainConfig(epochs=2, batch_size=10),
    )
    defaults.update(overrides)
    return FederationConfig(**defaults)


class TestFedAvgFinetune:
    def test_runs_and_reports(self):
        config = make_config()
        clients = make_clients(config)
        trainer = FedAvgFinetune(
            clients, model_factory(config), rounds=2, sample_fraction=0.5,
            seed=0, finetune_epochs=2,
        )
        history = trainer.run()
        assert 0.0 <= history.final_accuracy <= 1.0

    def test_finetune_beats_plain_fedavg_under_noniid(self):
        """The two-step recipe personalizes, so it must improve on raw FedAvg."""
        results = {}
        for cls, extra in ((FedAvg, {}), (FedAvgFinetune, {"finetune_epochs": 3})):
            config = make_config()
            clients = make_clients(config)
            trainer = cls(
                clients, model_factory(config), rounds=2, sample_fraction=1.0,
                seed=0, **extra,
            )
            results[cls.__name__] = trainer.run().final_accuracy
        assert results["FedAvgFinetune"] >= results["FedAvg"]

    def test_invalid_epochs(self):
        config = make_config()
        clients = make_clients(config)
        with pytest.raises(ValueError):
            FedAvgFinetune(
                clients, model_factory(config), rounds=1, finetune_epochs=0
            )


class TestStragglers:
    def test_budget_assignment_in_range(self):
        model = StragglerModel(num_clients=50, min_epochs=1, max_epochs=4, seed=0)
        budgets = [model.epochs_for(i) for i in range(50)]
        assert min(budgets) >= 1 and max(budgets) <= 4
        assert len(set(budgets)) > 1  # actually heterogeneous

    def test_deterministic(self):
        a = StragglerModel(10, seed=3)
        b = StragglerModel(10, seed=3)
        assert [a.epochs_for(i) for i in range(10)] == [
            b.epochs_for(i) for i in range(10)
        ]

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            StragglerModel(4, min_epochs=3, max_epochs=2)
        with pytest.raises(ValueError):
            StragglerModel(4, min_epochs=0, max_epochs=2)

    def test_fedavg_with_stragglers_runs(self):
        config = make_config()
        clients = make_clients(config)
        trainer = FedAvg(
            clients, model_factory(config), rounds=2, sample_fraction=1.0,
            seed=0, stragglers=StragglerModel(6, min_epochs=1, max_epochs=3, seed=1),
        )
        history = trainer.run()
        assert len(history.rounds) == 2

    def test_straggler_budget_changes_outcome(self):
        """One-epoch stragglers must train differently from five-epoch clients."""
        outcomes = {}
        for name, stragglers in (
            ("uniform5", None),
            ("straggling", StragglerModel(6, min_epochs=1, max_epochs=1, seed=0)),
        ):
            config = make_config(local=LocalTrainConfig(epochs=5, batch_size=10))
            clients = make_clients(config)
            trainer = FedAvg(
                clients, model_factory(config), rounds=1, sample_fraction=1.0,
                seed=0, stragglers=stragglers,
            )
            trainer.run()
            outcomes[name] = trainer.global_state["conv1.weight"]
        assert not np.allclose(outcomes["uniform5"], outcomes["straggling"])
