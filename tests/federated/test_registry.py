"""Trainer registry: registration, lookup, and error handling."""

import pytest

from repro.federated import (
    FedAvg,
    FederationConfig,
    LocalTrainConfig,
    SubFedAvgHy,
    SubFedAvgUn,
    available_algorithms,
    build_trainer,
    get_trainer,
    make_clients,
    register_trainer,
    unregister_trainer,
)
from repro.federated.trainers.base import FederatedTrainer


CORE = (
    "standalone",
    "fedavg",
    "fedprox",
    "lg-fedavg",
    "mtl",
    "sub-fedavg-un",
    "sub-fedavg-hy",
)


class TestLookup:
    def test_core_algorithms_registered(self):
        names = available_algorithms()
        for name in CORE:
            assert name in names

    def test_get_trainer_returns_spec(self):
        spec = get_trainer("fedavg")
        assert spec.name == "fedavg"
        assert spec.cls is FedAvg
        assert spec.config_sections == ()
        assert spec.summary  # first docstring line

    def test_config_sections_declared(self):
        assert get_trainer("sub-fedavg-un").config_sections == ("unstructured",)
        assert get_trainer("sub-fedavg-hy").config_sections == (
            "unstructured",
            "structured",
        )

    def test_local_defaults_declared(self):
        assert get_trainer("fedprox").local_defaults == {"prox_mu": 0.01}
        assert get_trainer("mtl").local_defaults == {"mtl_lambda": 0.1}

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="bogus.*choose from"):
            get_trainer("bogus")

    def test_algorithms_view_matches_registry(self):
        from repro.federated import ALGORITHMS
        from repro.federated import builder

        assert tuple(ALGORITHMS) == available_algorithms()
        assert builder.ALGORITHMS == available_algorithms()

    def test_algorithms_view_is_live(self):
        import repro.federated as federated

        @register_trainer("live-algo")
        class LiveAlgo(FedAvg):
            pass

        try:
            assert "live-algo" in federated.ALGORITHMS
            assert "live-algo" in federated.builder.ALGORITHMS
        finally:
            unregister_trainer("live-algo")
        assert "live-algo" not in federated.ALGORITHMS


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_trainer("fedavg")
            class Clone(FederatedTrainer):
                pass

    def test_unknown_config_section_rejected(self):
        with pytest.raises(ValueError, match="unknown config section"):
            register_trainer("x-algo", config_sections=("nonexistent",))

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError, match="not registered"):
            unregister_trainer("never-registered")

    def test_custom_trainer_builds_through_config(self):
        @register_trainer("unit-test-algo", local_defaults={"prox_mu": 0.5})
        class UnitTestAlgo(FedAvg):
            pass

        try:
            config = FederationConfig(
                dataset="mnist", algorithm="unit-test-algo", num_clients=3,
                rounds=2, n_train=120, n_test=60,
                local=LocalTrainConfig(epochs=1),
            )
            clients = make_clients(config)
            trainer = build_trainer(config, clients)
            assert isinstance(trainer, UnitTestAlgo)
            assert trainer.algorithm_name == "unit-test-algo"
            # declared local_defaults patched non-positive fields
            assert all(client.config.prox_mu == 0.5 for client in clients)
        finally:
            unregister_trainer("unit-test-algo")

    def test_unregistered_name_invalid_in_config(self):
        @register_trainer("transient-algo")
        class Transient(FedAvg):
            pass

        unregister_trainer("transient-algo")
        with pytest.raises(KeyError):
            FederationConfig(dataset="mnist", algorithm="transient-algo")


class TestBuilderDispatch:
    def test_trainer_overrides_forwarded(self):
        config = FederationConfig(
            dataset="mnist", algorithm="sub-fedavg-un", num_clients=3,
            rounds=2, n_train=120, n_test=60, local=LocalTrainConfig(epochs=1),
        )
        trainer = build_trainer(config, make_clients(config), aggregator="zerofill")
        assert isinstance(trainer, SubFedAvgUn)
        assert trainer.aggregator == "zerofill"

    def test_hybrid_receives_both_sections(self):
        from repro.pruning import StructuredConfig, UnstructuredConfig

        un = UnstructuredConfig(target_rate=0.3)
        st = StructuredConfig(target_rate=0.2)
        config = FederationConfig(
            dataset="mnist", algorithm="sub-fedavg-hy", num_clients=3,
            rounds=2, n_train=120, n_test=60, local=LocalTrainConfig(epochs=1),
            unstructured=un, structured=st,
        )
        trainer = build_trainer(config, make_clients(config))
        assert isinstance(trainer, SubFedAvgHy)
        assert trainer.unstructured is un
        assert trainer.structured is st
