"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.data import ArrayDataset


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_cnn(rng):
    """A minimal conv->bn->pool->fc network for fast end-to-end tests."""
    return nn.Sequential(
        nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 3, rng=rng),
    )


@pytest.fixture
def blob_dataset(rng):
    """A linearly separable 3-class image dataset (60 examples, 1x8x8)."""
    images = rng.normal(size=(60, 1, 8, 8))
    labels = rng.integers(0, 3, size=60)
    for k in range(3):
        images[labels == k, 0, k, :] += 3.0
    return ArrayDataset(images, labels)


def make_blob_arrays(rng, count=60, classes=3, side=8):
    images = rng.normal(size=(count, 1, side, side))
    labels = rng.integers(0, classes, size=count)
    for k in range(classes):
        images[labels == k, 0, k % side, :] += 3.0
    return images, labels
