"""FederationServer end to end: wire-served runs vs the in-process loop.

The central claim of the serving package: attaching real clients over
HTTP changes *where* client work executes and nothing else.  A
synchronous-policy run served over the wire is bit-identical to the same
config run in-process; an async-buffer run matches everywhere except
per-round ``train_loss`` membership (the in-process simulation trains
stragglers eagerly and counts their loss in the round that *started*
them; the wire collects it in the round that *delivers* them).
"""

import time

import pytest

from repro.federated import (
    CompressionConfig,
    Federation,
    FederationConfig,
    LocalTrainConfig,
    ScenarioConfig,
    SystemsConfig,
)
from repro.serving import FederationServer, ServerClient, attach_runners
from repro.serving.client import WireClientRunner
from repro.serving.protocol import PROTOCOL_VERSION, STATUS_WAIT
from repro.utils.serialization import history_to_dict

SCENARIO = ScenarioConfig(profiles=("edge-phone", "raspberry-pi"))
PRICING = dict(flops_per_example=1e6, examples_per_round=100.0)


def tiny_config(**overrides):
    base = dict(
        dataset="mnist",
        algorithm="fedavg",
        num_clients=4,
        rounds=2,
        sample_fraction=0.5,
        seed=0,
        eval_every=1,
        n_train=160,
        n_test=80,
        local=LocalTrainConfig(epochs=1, batch_size=10),
    )
    base.update(overrides)
    return FederationConfig(**base)


def serve_run(config, partitions, lease_seconds=30.0):
    """One wire-served run: a server plus one runner per index partition."""
    with FederationServer(config, lease_seconds=lease_seconds) as server:
        runners = attach_runners(server.url, partitions, poll_seconds=1.0)
        history = server.wait(timeout=120.0)
        for runner in runners:
            runner.stop()
        for runner in runners:
            runner.join(timeout=30.0)
    return history


class TestSynchronousEquivalence:
    def test_wire_run_bit_identical_to_in_process(self):
        config = tiny_config()
        local = history_to_dict(Federation.from_config(config).run())
        served = history_to_dict(serve_run(config, [(0, 1), (2, 3)]))
        assert served == local

    @pytest.mark.parametrize("codec", ("topk", "quantize"))
    def test_lossy_compression_config_bit_identical(self, codec):
        """A ``compression:`` section is modeled by the trainer (it
        round-trips each delta server-side), so the wire transport must
        stay lossless — a lossy codec config must not corrupt the served
        aggregation or double-apply the codec."""
        config = tiny_config(
            algorithm="fedavg-compressed",
            compression=CompressionConfig(codec=codec, fraction=0.5, bits=8),
        )
        local = history_to_dict(Federation.from_config(config).run())
        served = history_to_dict(serve_run(config, [(0, 1), (2, 3)]))
        assert served == local


class TestAsyncBufferEquivalence:
    def test_wire_run_matches_except_straggler_loss_membership(self):
        config = tiny_config(
            num_clients=6,
            rounds=4,
            n_train=240,
            n_test=120,
            scenario=SCENARIO,
            systems=SystemsConfig(
                round_policy="async-buffer", buffer_size=2, **PRICING
            ),
        )
        local = history_to_dict(Federation.from_config(config).run())
        served = history_to_dict(serve_run(config, [(0, 1, 2), (3, 4, 5)]))
        assert served["final_accuracy"] == local["final_accuracy"]
        assert (
            served["final_per_client_accuracy"]
            == local["final_per_client_accuracy"]
        )
        for wire_round, local_round in zip(served["rounds"], local["rounds"]):
            diffs = {
                key
                for key in local_round
                if wire_round.get(key) != local_round[key]
            }
            assert diffs <= {"train_loss"}


class TestDisconnectRecovery:
    def test_abandoned_lease_is_redispatched(self):
        config = tiny_config()
        local = history_to_dict(Federation.from_config(config).run())
        with FederationServer(config, lease_seconds=0.5) as server:
            # A flaky client leases round 1's first task and vanishes.
            flaky = ServerClient(server.url)
            flaky.register(None)
            leased = flaky.work(wait_seconds=10.0)
            assert leased["status"] == "task"
            # A steady fleet attaches; the expired lease must come back to
            # it, and the run must still finish bit-identical.
            runners = attach_runners(server.url, [(0, 1), (2, 3)],
                                     poll_seconds=0.5)
            history = server.wait(timeout=120.0)
            for runner in runners:
                runner.stop()
            for runner in runners:
                runner.join(timeout=30.0)
        assert history_to_dict(history) == local


class TestCrashSurfacesFailure:
    def test_runner_raises_when_server_vanishes_midrun(self):
        """A server crash (HTTP gone, run unfinished) must surface through
        join(), not be mistaken for a clean end of service."""
        config = tiny_config(rounds=50, eval_every=0)
        server = FederationServer(config).start()
        try:
            runner = WireClientRunner(server.url, poll_seconds=0.2)
            runner.api.retries = 1
            runner.api.backoff_seconds = 0.05
            runner.start()
            deadline = time.monotonic() + 60.0
            while runner.tasks_completed == 0:
                assert time.monotonic() < deadline, "runner never got work"
                time.sleep(0.02)
            # The "crash": HTTP vanishes while the trainer still serves.
            server._httpd.shutdown()
            server._httpd.server_close()
            with pytest.raises(RuntimeError, match="wire client failed"):
                runner.join(timeout=60.0)
        finally:
            server.stop()


class TestEndpoints:
    @pytest.fixture()
    def server(self):
        with FederationServer(tiny_config()) as server:
            yield server

    def test_health_reports_serving_phase(self, server):
        payload = ServerClient(server.url).health()
        assert payload["protocol"] == PROTOCOL_VERSION
        assert payload["phase"] == "serving"

    def test_config_round_trips(self, server):
        payload = ServerClient(server.url).fetch_config()
        rebuilt = FederationConfig.from_dict(payload["config"])
        assert rebuilt.to_dict() == server.config.to_dict()

    def test_work_without_eligible_client_waits(self, server):
        api = ServerClient(server.url)
        api.register([999])  # an index the run never schedules
        assert api.work(wait_seconds=0.0)["status"] == STATUS_WAIT

    def test_history_conflicts_while_serving(self, server):
        with pytest.raises(RuntimeError, match="409"):
            ServerClient(server.url).fetch_history()

    def test_unknown_endpoint_is_404(self, server):
        with pytest.raises(RuntimeError, match="404"):
            ServerClient(server.url)._request("/v1/nope")

    def test_wrong_protocol_version_rejected(self, server):
        with pytest.raises(RuntimeError, match="400"):
            ServerClient(server.url)._request(
                "/v1/register", {"protocol": 999, "clients": None}
            )

    def test_unregistered_work_poll_rejected(self, server):
        with pytest.raises(RuntimeError, match="400"):
            ServerClient(server.url)._request("/v1/work?session=424242")
