"""WireHub dispatch semantics: FIFO, leases, cancellation, idempotence.

The hub is the meeting point between one trainer thread and many wire
clients; every rule it enforces exists to keep a wire-served run
aggregating exactly what an in-process run would.  These tests pin the
rules down without HTTP in the way.
"""

import time

import numpy as np
import pytest

from repro.federated.execution import ClientTask, ClientUpdate
from repro.serving import HubClosed, WireHub
from repro.serving.protocol import STATUS_DONE, STATUS_TASK, STATUS_WAIT


def state():
    return {"w": np.arange(4, dtype=np.float64)}


def train(index):
    return ClientTask(client_index=index, kind="train", load="global")


def evaluate(index):
    return ClientTask(client_index=index, kind="evaluate", load="global")


def update(index):
    return ClientUpdate(client_index=index, client_id=index, num_examples=1)


class TestDispatchOrder:
    def test_per_client_fifo_head_only(self):
        hub = WireHub()
        _, (first,) = hub.submit_batch([train(0)], state(), round_index=1)
        _, (second,) = hub.submit_batch([evaluate(0)], state(), round_index=1)
        session = hub.register()
        got = hub.take(session)
        assert got["status"] == STATUS_TASK and got["task_id"] == first
        # The head is leased, the second task is behind it: nothing to serve.
        assert hub.take(session)["status"] == STATUS_WAIT
        hub.complete(first, update(0))
        assert hub.take(session)["task_id"] == second

    def test_lowest_task_id_served_first_across_clients(self):
        hub = WireHub()
        _, ids = hub.submit_batch([train(2), train(0), train(1)], state())
        session = hub.register()
        served = [hub.take(session)["task_id"] for _ in range(3)]
        assert served == sorted(ids)

    def test_session_scope_filters_clients(self):
        hub = WireHub()
        _, (for_zero, for_one) = hub.submit_batch(
            [train(0), train(1)], state()
        )
        only_one = hub.register([1])
        assert hub.take(only_one)["task_id"] == for_one
        assert hub.take(only_one)["status"] == STATUS_WAIT
        anything = hub.register()
        assert hub.take(anything)["task_id"] == for_zero

    def test_not_before_hides_tasks_until_due(self):
        hub = WireHub()
        soon = time.monotonic() + 0.15
        hub.submit_batch([train(0)], state(), not_before={0: soon})
        scoped = hub.register([0])
        unscoped = hub.register()
        assert hub.take(scoped)["status"] == STATUS_WAIT
        assert hub.take(unscoped)["status"] == STATUS_WAIT
        got = hub.take(unscoped, wait_seconds=2.0)
        assert got["status"] == STATUS_TASK
        assert time.monotonic() >= soon

    def test_done_after_run_finishes(self):
        hub = WireHub()
        session = hub.register()
        hub.mark_done()
        assert hub.take(session)["status"] == STATUS_DONE

    def test_unknown_session_rejected(self):
        hub = WireHub()
        with pytest.raises(KeyError):
            hub.take(12345)


class TestGlobalWeightsEtag:
    def test_global_sent_once_per_batch(self):
        hub = WireHub()
        batch, _ = hub.submit_batch([train(0), train(1)], state())
        session = hub.register()
        first = hub.take(session)
        assert "global" in first and first["batch_id"] == batch
        # Same batch, client says it already holds it: no re-download.
        second = hub.take(session, have_batch=batch)
        assert "global" not in second

    def test_new_batch_resends_global(self):
        hub = WireHub()
        old_batch, (old,) = hub.submit_batch([train(0)], state())
        session = hub.register()
        hub.take(session)
        hub.complete(old, update(0))
        new_batch, _ = hub.submit_batch([evaluate(0)], state())
        got = hub.take(session, have_batch=old_batch)
        assert got["batch_id"] == new_batch and "global" in got


class TestResults:
    def test_complete_is_idempotent(self):
        hub = WireHub()
        _, (task_id,) = hub.submit_batch([train(0)], state())
        assert hub.complete(task_id, update(0)) is True
        assert hub.complete(task_id, update(0)) is False
        assert hub.complete(987654, update(0)) is False
        assert hub.tasks_completed == 1

    def test_wait_for_returns_updates_in_request_order(self):
        hub = WireHub()
        _, ids = hub.submit_batch([train(0), train(1)], state())
        for task_id, index in zip(ids, (0, 1)):
            hub.complete(task_id, update(index))
        results = hub.wait_for(ids)
        assert [results[task_id].client_index for task_id in ids] == [0, 1]

    def test_wait_for_times_out(self):
        hub = WireHub()
        _, ids = hub.submit_batch([train(0)], state())
        with pytest.raises(TimeoutError):
            hub.wait_for(ids, timeout=0.05)

    def test_wait_for_raises_when_hub_closes(self):
        hub = WireHub()
        _, ids = hub.submit_batch([train(0)], state())
        hub.close()
        with pytest.raises(HubClosed):
            hub.wait_for(ids, timeout=1.0)


class TestLeases:
    def test_expired_lease_requeues_first_result_wins(self):
        hub = WireHub(lease_seconds=0.05)
        _, (task_id,) = hub.submit_batch([train(0)], state())
        flaky = hub.register()
        steady = hub.register()
        assert hub.take(flaky)["task_id"] == task_id  # ...then disconnects
        time.sleep(0.06)
        retaken = hub.take(steady, wait_seconds=1.0)
        assert retaken["task_id"] == task_id
        assert hub.complete(task_id, update(0)) is True
        # The flaky client's late duplicate is acknowledged and dropped.
        assert hub.complete(task_id, update(0)) is False
        assert hub.tasks_completed == 1

    def test_live_lease_is_not_redispatched(self):
        hub = WireHub(lease_seconds=30.0)
        hub.submit_batch([train(0)], state())
        first, second = hub.register(), hub.register()
        assert hub.take(first)["status"] == STATUS_TASK
        assert hub.take(second)["status"] == STATUS_WAIT


class TestRestartCancellation:
    def test_new_train_batch_cancels_stale_train(self):
        hub = WireHub()
        _, (stale,) = hub.submit_batch([train(0)], state(), round_index=1)
        _, (fresh,) = hub.submit_batch([train(0)], state(), round_index=2)
        session = hub.register()
        assert hub.take(session)["task_id"] == fresh
        with pytest.raises(RuntimeError, match="cancelled"):
            hub.wait_for([stale], timeout=0.5)

    def test_evaluate_batch_does_not_cancel_train(self):
        hub = WireHub()
        _, (pending,) = hub.submit_batch([train(0)], state(), round_index=1)
        hub.submit_batch([evaluate(0)], state(), round_index=1)
        session = hub.register()
        # The straggler trains first, then evaluates — round order holds.
        assert hub.take(session)["task_id"] == pending

    def test_completed_train_survives_restart_batch(self):
        hub = WireHub()
        _, (finished,) = hub.submit_batch([train(0)], state(), round_index=1)
        hub.complete(finished, update(0))
        hub.submit_batch([train(0)], state(), round_index=2)
        results = hub.wait_for([finished], timeout=0.5)
        assert results[finished].client_index == 0


class TestMemoryBounds:
    """A long-lived server must not accumulate per-round state."""

    def test_settled_batch_frees_global_blob(self):
        hub = WireHub()
        _, ids = hub.submit_batch([train(0), train(1)], state())
        assert len(hub._globals) == 1
        for task_id, index in zip(ids, (0, 1)):
            hub.complete(task_id, update(index))
        assert hub._globals == {}

    def test_wait_for_consumes_entries_off_the_board(self):
        hub = WireHub()
        _, ids = hub.submit_batch([train(0), train(1)], state())
        for task_id, index in zip(ids, (0, 1)):
            hub.complete(task_id, update(index))
        hub.wait_for(ids)
        assert hub._entries == {}
        # A late duplicate for a consumed task is still dropped quietly.
        assert hub.complete(ids[0], update(0)) is False
        # Introspection survives consumption.
        (stats,) = hub.stats()
        assert stats.completed == 2 and stats.settled
        with pytest.raises(RuntimeError, match="gone from the board"):
            hub.wait_for(ids, timeout=0.1)

    def test_cancelled_tasks_freed_and_settle_their_batch(self):
        hub = WireHub()
        _, (stale,) = hub.submit_batch([train(0)], state(), round_index=1)
        hub.submit_batch([train(0)], state(), round_index=2)
        # The restart batch settled round 1's batch: blob + entry freed.
        assert stale not in hub._entries
        assert len(hub._globals) == 1  # only round 2's blob remains
        stats = hub.stats()[0]
        assert stats.cancelled == 1 and stats.settled


class TestStats:
    def test_batch_latency_recorded_on_completion(self):
        hub = WireHub()
        _, ids = hub.submit_batch([train(0), train(1)], state(), round_index=3)
        (stats,) = hub.stats()
        assert stats.size == 2 and stats.latency_seconds is None
        for task_id, index in zip(ids, (0, 1)):
            hub.complete(task_id, update(index))
        (stats,) = hub.stats()
        assert stats.round_index == 3
        assert stats.completed == 2
        assert stats.latency_seconds is not None and stats.latency_seconds >= 0

    def test_outstanding_counts_pending_and_leased(self):
        hub = WireHub()
        _, ids = hub.submit_batch([train(0), train(1)], state())
        session = hub.register()
        hub.take(session)
        assert hub.outstanding() == 2
        for task_id, index in zip(ids, (0, 1)):
            hub.complete(task_id, update(index))
        assert hub.outstanding() == 0
