"""Bit-identical federations: lazy engine vs the eager reference.

The engine's core contract (ISSUE 6): switching ``compute:`` must not
change a single bit of any run artifact.  These smokes run the same
small federation under both engines and compare full Histories with
``==`` — no tolerances.
"""

import pytest

from repro.engine import ComputeConfig
from repro.federated import Federation, FederationConfig, LocalTrainConfig

LAZY = ComputeConfig(engine="lazy")


def small_config(algorithm, **overrides):
    defaults = dict(
        dataset="mnist",
        algorithm=algorithm,
        num_clients=6,
        rounds=2,
        sample_fraction=0.5,
        n_train=240,
        n_test=120,
        seed=0,
        eval_every=1,
        local=LocalTrainConfig(epochs=1, batch_size=10),
    )
    defaults.update(overrides)
    return FederationConfig(**defaults)


def run_history(config):
    return Federation.from_config(config).run()


def assert_histories_identical(reference, other, context=""):
    assert len(reference.rounds) == len(other.rounds), context
    for a, b in zip(reference.rounds, other.rounds):
        assert a.sampled_clients == b.sampled_clients, context
        assert a.train_loss == b.train_loss, (context, a.round_index)
        assert a.mean_accuracy == b.mean_accuracy, (context, a.round_index)
        assert a.sampled_accuracy == b.sampled_accuracy, (context, a.round_index)
        assert a.mean_sparsity == b.mean_sparsity, (context, a.round_index)
        assert a.mean_channel_sparsity == b.mean_channel_sparsity, context
        assert a.uploaded_bytes == b.uploaded_bytes, context
        assert a.downloaded_bytes == b.downloaded_bytes, context
    assert reference.final_accuracy == other.final_accuracy, context
    assert reference.final_per_client_accuracy == other.final_per_client_accuracy


@pytest.mark.parametrize("algorithm", ["fedavg", "sub-fedavg-un"])
def test_lazy_history_bit_identical_to_eager(algorithm):
    eager = run_history(small_config(algorithm))
    lazy = run_history(small_config(algorithm, compute=LAZY))
    assert_histories_identical(eager, lazy, context=algorithm)


def test_fusion_off_bit_identical_to_fusion_on():
    fused = run_history(small_config("fedavg", compute=LAZY))
    unfused = run_history(
        small_config("fedavg", compute=ComputeConfig(engine="lazy", fusion=False))
    )
    assert_histories_identical(fused, unfused, context="fusion flag")


def test_lazy_thread_backend_matches_eager_serial():
    """Grad-recording mode is thread-local: a thread backend evaluating
    under no_grad while another thread trains must not interfere."""
    eager = run_history(small_config("sub-fedavg-un"))
    lazy = run_history(
        small_config("sub-fedavg-un", compute=LAZY, backend="thread", workers=2)
    )
    assert_histories_identical(eager, lazy, context="thread backend")
