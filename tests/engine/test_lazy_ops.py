"""Every autograd op, exercised through the lazy engine.

Each case builds the same graph twice from identically-seeded leaves —
once eagerly (the historical reference), once under a lazy compute
scope — and requires *bit-identical* forward values and gradients.  The
cases then run the finite-difference check while the lazy engine is
active, so the numerical probes themselves flow through record/realize.
"""

import numpy as np
import pytest

from repro import nn
from repro.engine import ComputeConfig, compute_scope
from repro.optim import SGD
from repro.tensor import (
    Tensor,
    check_gradients,
    concat,
    conv2d,
    cross_entropy,
    dropout,
    log_softmax,
    max_pool2d,
    nll_loss,
    stack,
)

LAZY = ComputeConfig(engine="lazy")


def _away_from_zero(data, margin=0.15):
    """Shift entries near 0 outward so relu/abs kinks can't be crossed
    by the finite-difference probe."""
    data = np.asarray(data)
    shift = np.where(np.abs(data) < margin, np.where(data >= 0, margin, -margin), 0.0)
    return data + shift


def case_arithmetic(rng):
    a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(rng.random((3, 4)) + 0.5, requires_grad=True)
    return lambda: (a * b + a / b - b + 2.0 * a).sum(), [a, b]


def case_pow(rng):
    a = Tensor(rng.random((3, 4)) + 0.5, requires_grad=True)
    return lambda: ((a**3).sum() + (a**0.5).sum()), [a]


def case_transcendental(rng):
    a = Tensor(rng.normal(size=(3, 4)) * 0.5, requires_grad=True)
    b = Tensor(rng.random((3, 4)) + 0.5, requires_grad=True)
    return lambda: (a.exp().tanh() + a.sigmoid() * b.log()).sum(), [a, b]


def case_piecewise(rng):
    a = Tensor(_away_from_zero(rng.normal(size=(3, 4))), requires_grad=True)
    return lambda: (a.relu() * 2.0 + a.abs()).sum(), [a]


def case_reductions(rng):
    x = Tensor(rng.normal(size=(3, 4, 2)), requires_grad=True)
    return (
        lambda: x.sum(axis=1, keepdims=True).sum() + x.mean(axis=0).sum() + x.var() * 0.5,
        [x],
    )


def case_max(rng):
    x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    return lambda: x.max(axis=1).sum() + x.max() * 0.5, [x]


def case_matmul(rng):
    a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
    return lambda: (a @ b).sum(), [a, b]


def case_movement(rng):
    x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
    c = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
    return (
        lambda: (x.reshape(3, 4).transpose(1, 0) * x.reshape(4, 3)).sum()
        + (c.expand(3, 4) * x.reshape(3, 4)).sum(),
        [x, c],
    )


def case_slicing_and_padding(rng):
    x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
    return lambda: x[1:, :2].sum() + x.pad2d(1).sum() * 0.5, [x]


def case_concat_stack(rng):
    a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    return (
        lambda: (concat([a, b], axis=1) * 0.5).sum() + stack([a, b], axis=0).sum(),
        [a, b],
    )


def case_conv_pool(rng):
    x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
    w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.5, requires_grad=True)
    bias = Tensor(rng.normal(size=3), requires_grad=True)
    return (
        lambda: max_pool2d(conv2d(x, w, bias, stride=1, padding=1), kernel=2).sum(),
        [x, w, bias],
    )


def case_losses(rng):
    logits = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
    targets = np.array([0, 2, 4, 1])
    return (
        lambda: cross_entropy(logits, targets)
        + nll_loss(log_softmax(logits), targets) * 0.5,
        [logits],
    )


CASES = [
    ("arithmetic", case_arithmetic),
    ("pow", case_pow),
    ("transcendental", case_transcendental),
    ("piecewise", case_piecewise),
    ("reductions", case_reductions),
    ("max", case_max),
    ("matmul", case_matmul),
    ("movement", case_movement),
    ("slicing_and_padding", case_slicing_and_padding),
    ("concat_stack", case_concat_stack),
    ("conv_pool", case_conv_pool),
    ("losses", case_losses),
]


def _evaluate(make):
    func, leaves = make(np.random.default_rng(0))
    out = func()
    out.backward()
    value = np.array(out.data, copy=True)
    grads = [np.array(leaf.grad, copy=True) for leaf in leaves]
    return value, grads


@pytest.mark.parametrize("make", [c[1] for c in CASES], ids=[c[0] for c in CASES])
class TestLazyOps:
    def test_forward_and_grads_bit_identical_to_eager(self, make):
        eager_value, eager_grads = _evaluate(make)
        with compute_scope(LAZY):
            lazy_value, lazy_grads = _evaluate(make)
        assert np.array_equal(eager_value, lazy_value)
        for eager_grad, lazy_grad in zip(eager_grads, lazy_grads):
            assert np.array_equal(eager_grad, lazy_grad)

    def test_gradcheck_through_lazy_engine(self, make):
        with compute_scope(LAZY):
            func, leaves = make(np.random.default_rng(0))
            check_gradients(func, leaves, atol=1e-5, max_checks=32)


def _train_step(config):
    """Init a small CNN, run one forward/backward/SGD step, return weights."""
    with compute_scope(config):
        rng = np.random.default_rng(3)
        model = nn.Sequential(
            nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(4 * 4 * 4, 3, rng=rng),
        )
        images = np.random.default_rng(4).normal(size=(5, 1, 8, 8))
        labels = np.array([0, 1, 2, 0, 1])
        optimizer = SGD(list(model.named_parameters()), lr=0.1, momentum=0.5)
        loss = nn.CrossEntropyLoss()(model(Tensor(images)), labels)
        loss.backward()
        optimizer.step()
        return float(loss.item()), {k: np.array(v) for k, v in model.state_dict().items()}


class TestWholeLayerStack:
    def test_cnn_training_step_bit_identical(self):
        """conv → BN(train) → relu → pool → linear → CE, one SGD step."""
        eager_loss, eager_state = _train_step(None)
        lazy_loss, lazy_state = _train_step(LAZY)
        assert eager_loss == lazy_loss
        assert eager_state.keys() == lazy_state.keys()
        for name in eager_state:
            assert np.array_equal(eager_state[name], lazy_state[name]), name

    def test_dropout_consumes_identical_rng_stream(self):
        """The dropout mask is drawn eagerly, so the client RNG stream —
        and therefore data order downstream — is engine-independent."""

        def run(config):
            with compute_scope(config):
                rng = np.random.default_rng(7)
                x = Tensor(np.random.default_rng(8).normal(size=(4, 6)), requires_grad=True)
                out = dropout(x, rate=0.5, rng=rng, training=True)
                out.sum().backward()
                return np.array(out.data), np.array(x.grad), rng.random()

        eager_out, eager_grad, eager_next = run(None)
        lazy_out, lazy_grad, lazy_next = run(LAZY)
        assert np.array_equal(eager_out, lazy_out)
        assert np.array_equal(eager_grad, lazy_grad)
        assert eager_next == lazy_next
