"""Runtime registry, ComputeConfig validation, hash compat and CLI plumbing."""

import importlib.util

import numpy as np
import pytest

from repro.cli import main
from repro.engine import (
    OPS,
    STATS,
    ComputeConfig,
    NumpyRuntime,
    Runtime,
    available_runtimes,
    compute_scope,
    get_runtime,
    get_runtime_spec,
    register_runtime,
    runtime_specs,
    unregister_runtime,
)
from repro.federated import FederationConfig


class TestRegistry:
    def test_numpy_reference_runtime_registered(self):
        assert "numpy" in available_runtimes()
        spec = get_runtime_spec("numpy")
        assert spec.cls is NumpyRuntime
        assert spec.summary
        assert isinstance(get_runtime("numpy"), NumpyRuntime)

    def test_instances_are_cached(self):
        assert get_runtime("numpy") is get_runtime("numpy")

    def test_unknown_runtime_lists_choices(self):
        with pytest.raises(KeyError, match="numpy"):
            get_runtime_spec("tpu-v9")

    def test_register_summary_falls_back_to_docstring(self):
        @register_runtime("doc-summary")
        class DocRuntime(NumpyRuntime):
            """First line becomes the registry summary."""

        try:
            assert (
                get_runtime_spec("doc-summary").summary
                == "First line becomes the registry summary."
            )
            assert DocRuntime.name == "doc-summary"
            assert "doc-summary" in [spec.name for spec in runtime_specs()]
        finally:
            unregister_runtime("doc-summary")
        assert "doc-summary" not in available_runtimes()

    def test_numpy_cannot_be_unregistered(self):
        with pytest.raises(ValueError):
            unregister_runtime("numpy")
        with pytest.raises(KeyError):
            unregister_runtime("never-registered")

    def test_torch_registration_tracks_importability(self):
        expected = importlib.util.find_spec("torch") is not None
        assert ("torch" in available_runtimes()) == expected


class Boxed:
    """Stand-in device array: an ndarray hidden behind an opaque wrapper."""

    def __init__(self, array):
        self.array = array


class TestCustomRuntime:
    """A partial third-party backend still yields bit-identical results:
    unsupported ops and saved-intermediate ops fall back to the
    reference kernels with transparent host/device transfers."""

    @pytest.fixture()
    def boxed_runtime(self):
        @register_runtime("boxed", summary="test double with a fake device type")
        class BoxedRuntime(Runtime):
            def supports(self, op):
                return op in ("add", "mul", "relu", "sum", "matmul")

            def to_device(self, array):
                return Boxed(array)

            def to_host(self, value):
                return value.array if isinstance(value, Boxed) else value

            def execute(self, op, attrs, args):
                host = [a.array for a in args]
                return Boxed(OPS[op].kernel(attrs or {}, *host))

        yield BoxedRuntime
        unregister_runtime("boxed")

    def test_partial_backend_is_bit_identical_with_fallbacks(self, boxed_runtime):
        def compute():
            rng = np.random.default_rng(0)
            from repro.tensor import Tensor

            a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
            b = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
            out = ((a @ b).relu().exp() + 1.0).sum()  # exp unsupported -> fallback
            out.backward()
            return float(out.item()), np.array(a.grad), np.array(b.grad)

        eager = compute()
        with compute_scope(ComputeConfig(engine="lazy", runtime="boxed")):
            STATS.reset()
            boxed = compute()
        assert eager[0] == boxed[0]
        assert np.array_equal(eager[1], boxed[1])
        assert np.array_equal(eager[2], boxed[2])
        assert STATS.fallbacks > 0  # exp ran on the reference kernels


class TestComputeConfig:
    def test_defaults(self):
        config = ComputeConfig()
        assert config.engine == "eager"
        assert config.runtime == "numpy"
        assert config.fusion is True

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ComputeConfig(engine="jit")

    def test_unknown_runtime_rejected_at_declaration(self):
        with pytest.raises(KeyError):
            ComputeConfig(engine="lazy", runtime="cuda-graphs")


def hash_config(**overrides):
    return FederationConfig(
        dataset="mnist", algorithm="fedavg", num_clients=4, rounds=1, seed=0,
        **overrides,
    )


class TestHashCompatibility:
    """``compute:`` joins the canonical hash payload only when non-default,
    so every result store keyed before ISSUE 6 still resolves."""

    def test_default_compute_leaves_stable_hash_unchanged(self):
        assert hash_config().stable_hash() == "70451bccff9b90c5"
        assert (
            hash_config(compute=ComputeConfig()).stable_hash()
            == hash_config().stable_hash()
        )

    def test_non_default_compute_changes_stable_hash(self):
        lazy = hash_config(compute=ComputeConfig(engine="lazy"))
        assert lazy.stable_hash() == "dd43dd215f687f1f"
        unfused = hash_config(compute=ComputeConfig(engine="lazy", fusion=False))
        assert unfused.stable_hash() == "1f307a5cef1c6576"
        assert len({lazy.stable_hash(), unfused.stable_hash(),
                    hash_config().stable_hash()}) == 3

    def test_compute_round_trips_through_json(self):
        config = hash_config(compute=ComputeConfig(engine="lazy", fusion=False))
        restored = FederationConfig.from_json(config.to_json())
        assert restored == config
        assert restored.compute.fusion is False
        assert restored.stable_hash() == config.stable_hash()


class TestCLI:
    def test_list_shows_runtime_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "runtimes:" in out
        assert "numpy" in out

    def test_runtime_flag_selects_lazy_engine(self, tmp_path):
        config_path = tmp_path / "run.json"
        assert main(
            ["run", "--dataset", "mnist", "--algorithm", "fedavg",
             "--runtime", "numpy", "--export-config", str(config_path)]
        ) == 0
        restored = FederationConfig.from_json(config_path.read_text())
        assert restored.compute == ComputeConfig(engine="lazy", runtime="numpy")

    def test_runtime_eager_keeps_default_engine(self, tmp_path):
        config_path = tmp_path / "run.json"
        assert main(
            ["run", "--dataset", "mnist", "--algorithm", "fedavg",
             "--runtime", "eager", "--export-config", str(config_path)]
        ) == 0
        restored = FederationConfig.from_json(config_path.read_text())
        assert restored.compute == ComputeConfig()

    def test_set_override_reaches_compute_section(self, tmp_path):
        config_path = tmp_path / "run.json"
        assert main(
            ["run", "--dataset", "mnist", "--algorithm", "fedavg",
             "--runtime", "numpy", "--set", "compute.fusion=false",
             "--export-config", str(config_path)]
        ) == 0
        restored = FederationConfig.from_json(config_path.read_text())
        assert restored.compute.engine == "lazy"
        assert restored.compute.fusion is False

    def test_bad_runtime_choice_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "--dataset", "mnist", "--algorithm", "fedavg",
                  "--runtime", "tpu-v9", "--export-config", "/dev/null"])
