"""Scheduler behaviour: kernel counts, elementwise fusion, movement folding.

``STATS`` is the engine's observable: ``ops_recorded`` counts graph nodes,
``kernels`` counts scheduler dispatches, ``ops_fused`` counts nodes that
were collapsed into a preceding kernel, ``movements_folded`` counts
reshape/transpose/expand nodes realized as numpy views (zero kernels).
"""

import numpy as np

from repro.engine import STATS, ComputeConfig, compute_scope
from repro.tensor import Tensor, no_grad

LAZY = ComputeConfig(engine="lazy")
UNFUSED = ComputeConfig(engine="lazy", fusion=False)


def _chain(a, b):
    """Five elementwise ops: mul, relu, mul(const), exp, tanh."""
    return ((a * b).relu() * 2.0).exp().tanh()


class TestElementwiseFusion:
    def test_inference_chain_collapses_to_one_kernel(self):
        rng = np.random.default_rng(0)
        a, b = Tensor(rng.normal(size=(8, 8))), Tensor(rng.normal(size=(8, 8)))
        with compute_scope(LAZY), no_grad():
            STATS.reset()
            out = _chain(a, b)
            result = out.data
        assert STATS.ops_recorded == 5
        assert STATS.kernels == 1
        assert STATS.ops_fused == 4
        expected = np.tanh(np.exp((a.data * b.data) * (a.data * b.data > 0) * 2.0))
        assert np.array_equal(result, expected)

    def test_fusion_flag_disables_grouping(self):
        rng = np.random.default_rng(0)
        a, b = Tensor(rng.normal(size=(8, 8))), Tensor(rng.normal(size=(8, 8)))
        with compute_scope(UNFUSED), no_grad():
            STATS.reset()
            _ = _chain(a, b).data
        assert STATS.ops_recorded == 5
        assert STATS.kernels == 5
        assert STATS.ops_fused == 0

    def test_reduce_terminates_a_group(self):
        """sum is never fused into an elementwise group: the chain before it
        becomes one kernel, the reduction a second."""
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(8, 8)))
        with compute_scope(LAZY), no_grad():
            STATS.reset()
            _ = (a * 2.0 + 1.0).sum().data
        assert STATS.ops_recorded == 3
        assert STATS.kernels == 2
        assert STATS.ops_fused == 1


class TestKeepMarking:
    def test_backward_needs_block_fusion_across_them(self):
        """exp keeps its output for backward, so the consumer cannot fuse
        past it — and the kept value feeds the gradient bit-exactly."""
        rng = np.random.default_rng(2)
        data = rng.normal(size=(4, 4))
        with compute_scope(LAZY):
            a = Tensor(data, requires_grad=True)
            STATS.reset()
            out = (a.exp() * 2.0).sum()
            out.backward()
        assert STATS.ops_recorded == 3
        assert STATS.kernels == 3  # exp | mul | sum — keep boundary + reduce
        np.testing.assert_array_equal(a.grad, np.exp(data) * 2.0)

    def test_no_grad_removes_keeps_and_restores_fusion(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(4, 4))
        with compute_scope(LAZY), no_grad():
            a = Tensor(data, requires_grad=True)
            STATS.reset()
            _ = (a.exp() * 2.0).sum().data
        assert STATS.kernels == 2  # exp+mul fuse | sum


class TestMovementFolding:
    def test_movement_ops_become_views_not_kernels(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 6)))
        with compute_scope(LAZY), no_grad():
            STATS.reset()
            out = (x.reshape(3, 4).transpose(1, 0) * x.reshape(4, 3)).sum()
            result = out.data
        assert STATS.ops_recorded == 5  # reshape, transpose, reshape, mul, sum
        assert STATS.movements_folded == 3
        assert STATS.kernels == 2  # mul | sum
        expected = (x.data.reshape(3, 4).T * x.data.reshape(4, 3)).sum()
        assert np.array_equal(result, np.asarray(expected))

    def test_realized_movement_output_is_a_base_view(self):
        """A folded reshape shares memory with its realized base."""
        with compute_scope(LAZY), no_grad():
            x = Tensor(np.arange(12.0))
            y = x.reshape(3, 4)
            assert np.shares_memory(y.data, x.data)


class TestRealizationPoints:
    def test_data_access_realizes_once(self):
        with compute_scope(LAZY), no_grad():
            a = Tensor(np.ones((2, 2)))
            b = a + 1.0
            assert b.lazy
            np.testing.assert_array_equal(b.data, np.full((2, 2), 2.0))
            assert not b.lazy
            STATS.reset()
            _ = b.data  # second access: cached, no new kernels
            assert STATS.kernels == 0

    def test_shape_introspection_does_not_realize(self):
        with compute_scope(LAZY), no_grad():
            a = Tensor(np.ones((3, 5)))
            b = (a * 2.0).reshape(5, 3).transpose(1, 0)
            assert b.shape == (3, 5)
            assert b.ndim == 2
            assert b.size == 15
            assert len(b) == 3
            assert b.lazy  # still unrealized after all of the above

    def test_item_and_backward_realize(self):
        with compute_scope(LAZY):
            a = Tensor(np.full((2, 2), 3.0), requires_grad=True)
            loss = (a * a).sum()
            assert loss.item() == 36.0
            loss.backward()
            np.testing.assert_array_equal(a.grad, np.full((2, 2), 6.0))
