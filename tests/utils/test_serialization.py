"""State/mask/history persistence round-trips."""

import numpy as np
import pytest

from repro.federated import History, RoundRecord
from repro.models import create_model
from repro.pruning import MaskSet
from repro.utils import (
    load_history,
    load_mask,
    load_state,
    save_history,
    save_mask,
    save_state,
)


class TestStateRoundTrip:
    def test_exact_roundtrip(self, tmp_path):
        model = create_model("mnist", seed=3)
        path = tmp_path / "state.npz"
        save_state(path, model.state_dict())
        loaded = load_state(path)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(loaded[name], value)

    def test_loaded_state_restores_model(self, tmp_path):
        model = create_model("mnist", seed=3)
        path = tmp_path / "state.npz"
        save_state(path, model.state_dict())
        other = create_model("mnist", seed=99)
        other.load_state_dict(load_state(path))
        np.testing.assert_array_equal(
            other.conv1.weight.data, model.conv1.weight.data
        )


class TestMaskRoundTrip:
    def test_exact_roundtrip(self, tmp_path):
        mask = MaskSet({"a": np.array([1, 0, 1]), "b": np.zeros((2, 2))})
        path = tmp_path / "mask.npz"
        save_mask(path, mask)
        loaded = load_mask(path)
        assert loaded == mask

    def test_dtype_is_float_after_load(self, tmp_path):
        mask = MaskSet({"a": np.array([1, 0])})
        path = tmp_path / "mask.npz"
        save_mask(path, mask)
        assert load_mask(path)["a"].dtype == np.float64


class TestHistoryRoundTrip:
    def make_history(self):
        history = History(algorithm="sub-fedavg-un")
        history.append(
            RoundRecord(
                round_index=1,
                sampled_clients=[0, 2],
                train_loss=0.5,
                mean_accuracy=0.8,
                mean_sparsity=0.1,
                uploaded_bytes=123.0,
                downloaded_bytes=456.0,
            )
        )
        history.final_accuracy = 0.9
        history.final_per_client_accuracy = {0: 0.85, 2: 0.95}
        return history

    def test_roundtrip(self, tmp_path):
        history = self.make_history()
        path = tmp_path / "history.json"
        save_history(path, history)
        loaded = load_history(path)
        assert loaded.algorithm == history.algorithm
        assert loaded.final_accuracy == history.final_accuracy
        assert loaded.final_per_client_accuracy == history.final_per_client_accuracy
        assert loaded.total_communication_bytes == history.total_communication_bytes
        assert len(loaded.rounds) == 1
        assert loaded.rounds[0].sampled_clients == [0, 2]
        assert loaded.rounds[0].mean_accuracy == 0.8

    def test_client_ids_restored_as_ints(self, tmp_path):
        path = tmp_path / "history.json"
        save_history(path, self.make_history())
        loaded = load_history(path)
        assert all(isinstance(cid, int) for cid in loaded.final_per_client_accuracy)
