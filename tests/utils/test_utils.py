"""Utility helpers: RNG fan-out, timers, logging."""

import logging
import time

import numpy as np
import pytest

from repro.utils import Timer, get_logger, seed_everything, spawn_rng
from repro.utils.rng import hash_stable


class TestRng:
    def test_seed_everything_deterministic(self):
        a = seed_everything(5).normal(size=4)
        b = seed_everything(5).normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_rng_streams_decorrelated(self):
        a = spawn_rng(1, "partition").normal(size=100)
        b = spawn_rng(1, "model").normal(size=100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.3

    def test_spawn_rng_deterministic(self):
        a = spawn_rng(7, "x", 3).normal(size=5)
        b = spawn_rng(7, "x", 3).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_rng_tuple_seed(self):
        rng = spawn_rng((1, 2), "stream")
        assert rng.normal() is not None

    def test_hash_stable_is_stable(self):
        assert hash_stable("abc") == hash_stable("abc")
        assert hash_stable("abc") != hash_stable("abd")


class TestTimer:
    def test_context_manager(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_lap_without_stop(self):
        timer = Timer().start()
        assert timer.lap() >= 0.0

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()
        with pytest.raises(RuntimeError):
            Timer().lap()


class TestLogger:
    def test_namespaced(self):
        logger = get_logger("test")
        assert logger.name == "repro.test"

    def test_idempotent_handlers(self):
        a = get_logger("dup")
        b = get_logger("dup")
        assert a is b
        assert len(a.handlers) == 1

    def test_level_setting(self):
        logger = get_logger("lvl", level=logging.DEBUG)
        assert logger.level == logging.DEBUG
