"""CLI: the `list` subcommand and serialized-config runs."""

import pytest

from repro.cli import build_parser, main
from repro.federated import FederationConfig, LocalTrainConfig, available_algorithms


def tiny_config_json():
    return FederationConfig(
        dataset="mnist",
        algorithm="fedavg",
        num_clients=3,
        rounds=2,
        sample_fraction=1.0,
        n_train=120,
        n_test=60,
        seed=0,
        local=LocalTrainConfig(epochs=1, batch_size=10),
    ).to_json()


class TestListCommand:
    def test_lists_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "algorithms:" in out
        for name in ("fedavg", "sub-fedavg-un", "sub-fedavg-hy"):
            assert name in out
        assert "datasets:" in out
        assert "cifar10" in out
        assert "presets:" in out
        assert "smoke" in out

    def test_choices_come_from_registry(self):
        parser = build_parser()
        for algorithm in available_algorithms():
            args = parser.parse_args(["run", "--algorithm", algorithm])
            assert args.algorithm == algorithm


class TestConfigRuns:
    def test_run_from_config_file(self, capsys, tmp_path):
        config_path = tmp_path / "run.json"
        config_path.write_text(tiny_config_json())
        assert main(["run", "--config", str(config_path)]) == 0
        out = capsys.readouterr().out
        assert "fedavg on mnist" in out
        assert "final personalized accuracy" in out

    def test_export_config_round_trips_without_training(self, capsys, tmp_path):
        config_path = tmp_path / "run.json"
        source_path = tmp_path / "source.json"
        source_path.write_text(tiny_config_json())
        assert main(
            ["run", "--config", str(source_path), "--export-config", str(config_path)]
        ) == 0
        restored = FederationConfig.from_json(config_path.read_text())
        assert restored == FederationConfig.from_json(source_path.read_text())
        # export is a preparation step: no federation was trained
        assert "final personalized accuracy" not in capsys.readouterr().out

    def test_export_config_resolves_preset_flags(self, capsys, tmp_path):
        config_path = tmp_path / "run.json"
        assert main(
            ["run", "--dataset", "mnist", "--algorithm", "fedavg",
             "--preset", "smoke", "--export-config", str(config_path)]
        ) == 0
        restored = FederationConfig.from_json(config_path.read_text())
        assert restored.algorithm == "fedavg"
        assert restored.num_clients == 8  # smoke preset sizing

    def test_scenario_flags_and_set_overrides_reach_the_config(self, tmp_path):
        config_path = tmp_path / "run.json"
        assert main(
            ["run", "--dataset", "mnist", "--algorithm", "fedavg",
             "--partition", "dirichlet", "--sampler", "availability",
             "--set", "data.dirichlet_alpha=0.2", "--set", "scenario.dropout=0.1",
             "--set", "rounds=7",
             "--export-config", str(config_path)]
        ) == 0
        restored = FederationConfig.from_json(config_path.read_text())
        assert restored.data.partition == "dirichlet"
        assert restored.data.dirichlet_alpha == 0.2
        assert restored.scenario.sampler == "availability"
        assert restored.scenario.dropout == 0.1
        assert restored.rounds == 7

    def test_bad_set_overrides_exit_cleanly(self):
        for assignment in (
            "data.no_such_field=1",     # unknown field -> TypeError
            "scenario.dropout=1.5",     # rejected value -> ValueError
            "data.partition=bogus",     # unknown registry name -> KeyError
            "malformed",                # no '=' at all
        ):
            with pytest.raises(SystemExit):
                main(["run", "--dataset", "mnist", "--algorithm", "fedavg",
                      "--set", assignment, "--export-config", "/dev/null"])
