"""Sweep engine: spec expansion, hashing, failure isolation, resume, parity."""

import json

import pytest

from repro.experiments import (
    PRESETS,
    ResultStore,
    SweepCell,
    SweepError,
    SweepRunner,
    SweepSpec,
    Variant,
    federation_config,
    get_preset,
    run_algorithm,
    run_sweep,
    smoke_spec,
)
from repro.federated import Federation, FederationConfig
from repro.pruning import UnstructuredConfig


def tiny_config(**overrides) -> FederationConfig:
    """A federation small enough that a cell runs in well under a second."""
    defaults = dict(
        dataset="mnist",
        algorithm="fedavg",
        num_clients=4,
        rounds=2,
        sample_fraction=0.5,
        n_train=96,
        n_test=48,
        seed=0,
    )
    defaults.update(overrides)
    return FederationConfig(**defaults)


def tiny_cell(key="cell", **overrides) -> SweepCell:
    return SweepCell(key=key, config=tiny_config(**overrides))


class TestSpecExpansion:
    def test_axes_product_and_order(self):
        spec = SweepSpec(
            name="grid",
            datasets=("mnist", "emnist"),
            algorithms=("fedavg", "standalone"),
            seeds=(0, 1),
        )
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 2
        # datasets outermost, then algorithms, then seeds innermost
        assert cells[0].key == "grid/mnist/fedavg/seed0"
        assert cells[1].key == "grid/mnist/fedavg/seed1"
        assert cells[2].key == "grid/mnist/standalone/seed0"
        assert cells[4].key == "grid/emnist/fedavg/seed0"

    def test_cells_carry_full_configs(self):
        spec = SweepSpec(name="grid", datasets=("mnist",), algorithms=("fedavg",))
        (cell,) = spec.expand()
        preset = get_preset("smoke")
        assert cell.config.dataset == "mnist"
        assert cell.config.algorithm == "fedavg"
        assert cell.config.num_clients == preset.num_clients
        assert cell.config.rounds == preset.rounds

    def test_variant_pins_pruning_and_trainer_overrides(self):
        variant = Variant(
            label="un@50",
            algorithm="sub-fedavg-un",
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.2),
            trainer_overrides={"aggregator": "zerofill"},
            tags={"target": 0.5},
        )
        spec = SweepSpec(name="grid", datasets=("mnist",), algorithms=(variant,))
        (cell,) = spec.expand()
        assert cell.key == "grid/mnist/un@50/seed0"
        assert cell.config.unstructured.target_rate == 0.5
        assert cell.trainer_overrides == {"aggregator": "zerofill"}
        assert cell.tags["target"] == 0.5

    def test_override_axis_labels_keys_and_configures_cells(self):
        spec = SweepSpec(
            name="grid",
            datasets=("mnist",),
            algorithms=("fedavg",),
            base={"partition": "dirichlet"},
            overrides={
                "alpha=0.1": {"dirichlet_alpha": 0.1},
                "alpha=5": {"dirichlet_alpha": 5.0},
            },
        )
        cells = spec.expand()
        assert [cell.key for cell in cells] == [
            "grid/mnist/fedavg/alpha=0.1/seed0",
            "grid/mnist/fedavg/alpha=5/seed0",
        ]
        assert all(cell.config.partition == "dirichlet" for cell in cells)
        assert cells[0].config.dirichlet_alpha == 0.1
        assert cells[1].config.dirichlet_alpha == 5.0

    def test_eval_every_override_routes_to_dedicated_parameter(self):
        spec = SweepSpec(
            name="grid",
            datasets=("mnist",),
            algorithms=("fedavg",),
            base={"eval_every": 1},
        )
        (cell,) = spec.expand()
        assert cell.config.eval_every == 1

    def test_smoke_spec_is_the_ci_2x2_grid(self):
        cells = smoke_spec().expand()
        assert len(cells) == 4
        assert {cell.config.dataset for cell in cells} == {"mnist", "emnist"}
        assert {cell.config.algorithm for cell in cells} == {
            "fedavg",
            "sub-fedavg-un",
        }
        assert all(cell.config.rounds == PRESETS["smoke"].rounds for cell in cells)


class TestConfigHash:
    def test_stable_across_field_ordering(self):
        config = tiny_config()
        payload = config.to_dict()
        reordered = dict(reversed(list(payload.items())))
        assert list(reordered) != list(payload)
        assert FederationConfig.from_dict(reordered).stable_hash() == config.stable_hash()

    def test_differs_when_any_field_differs(self):
        assert tiny_config().stable_hash() != tiny_config(seed=1).stable_hash()
        assert (
            tiny_config().stable_hash()
            != tiny_config(algorithm="standalone").stable_hash()
        )

    def test_trainer_overrides_fold_into_cell_hash_order_independently(self):
        plain = tiny_cell()
        tweaked = SweepCell(
            key="cell", config=tiny_config(), trainer_overrides={"a": 1, "b": 2}
        )
        reordered = SweepCell(
            key="cell", config=tiny_config(), trainer_overrides={"b": 2, "a": 1}
        )
        assert tweaked.config_hash != plain.config_hash
        assert tweaked.config_hash == reordered.config_hash

    def test_tags_and_key_do_not_affect_the_hash(self):
        a = SweepCell(key="a", config=tiny_config(), tags={"color": "red"})
        b = SweepCell(key="b", config=tiny_config(), tags={"color": "blue"})
        assert a.config_hash == b.config_hash


class TestOverrideCollision:
    def test_preset_derived_override_raises_clear_error(self):
        with pytest.raises(ValueError, match="rounds"):
            run_algorithm("mnist", "fedavg", "smoke", rounds=2)

    def test_error_names_every_colliding_field(self):
        with pytest.raises(ValueError, match=r"\['n_train', 'rounds'\]"):
            federation_config(
                "mnist", "fedavg", get_preset("smoke"), rounds=2, n_train=10
            )

    def test_non_derived_overrides_still_pass_through(self):
        config = federation_config(
            "mnist",
            "fedavg",
            get_preset("smoke"),
            partition="dirichlet",
            dirichlet_alpha=0.3,
            backend="thread",
        )
        assert config.partition == "dirichlet"
        assert config.backend == "thread"

    def test_registry_override_helpers_flow_through(self):
        """partition_override/sampler_override dicts work as overrides,
        including partitioner params outside the legacy flat six."""
        from repro.experiments import partition_override, sampler_override

        overrides = {
            **partition_override("label-k", labels_per_client=3),
            **sampler_override("availability", dropout=0.25),
        }
        config = federation_config("mnist", "fedavg", get_preset("smoke"), **overrides)
        assert config.data.partition == "label-k"
        assert config.data.labels_per_client == 3
        assert config.scenario.sampler == "availability"
        assert config.scenario.dropout == 0.25

    def test_override_helpers_validate_names_at_declaration(self):
        from repro.experiments import partition_override, sampler_override

        with pytest.raises(KeyError, match="unknown partition strategy"):
            partition_override("bogus")
        with pytest.raises(KeyError, match="unknown sampler"):
            sampler_override("bogus")


class TestFailureIsolation:
    def test_one_failing_cell_does_not_kill_the_sweep(self):
        good = tiny_cell(key="good")
        bad = SweepCell(
            key="bad",
            config=tiny_config(seed=7),
            trainer_overrides={"not_a_trainer_kwarg": True},
        )
        result = run_sweep([good, bad])
        assert result.executed == ["good"]
        assert set(result.failed) == {"bad"}
        assert "not_a_trainer_kwarg" in result.failed["bad"]
        assert result["good"].ok
        with pytest.raises(SweepError, match="bad"):
            result.raise_failures()

    def test_failed_cells_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        bad = SweepCell(
            key="bad",
            config=tiny_config(),
            trainer_overrides={"not_a_trainer_kwarg": True},
        )
        run_sweep([bad], store=store)
        assert list(tmp_path.glob("*.json")) == []
        # and a retry executes it again rather than reusing a failure
        result = run_sweep([bad], store=store)
        assert set(result.failed) == {"bad"}


class TestResume:
    def test_second_run_executes_zero_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = [tiny_cell("a"), tiny_cell("b", seed=1)]
        first = run_sweep(cells, store=store)
        assert first.executed == ["a", "b"] and first.reused == []
        second = run_sweep(cells, store=store)
        assert second.executed == [] and second.reused == ["a", "b"]
        assert second["a"].history == first["a"].history

    def test_store_files_are_keyed_by_config_hash(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = tiny_cell()
        run_sweep([cell], store=store)
        assert (tmp_path / f"{cell.config_hash}.json").exists()

    def test_resume_false_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = tiny_cell()
        run_sweep([cell], store=store)
        again = run_sweep([cell], store=store, resume=False)
        assert again.executed == [cell.key]

    def test_corrupt_store_entry_is_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = tiny_cell()
        run_sweep([cell], store=store)
        store.path_for(cell.config_hash).write_text("{not json")
        result = run_sweep([cell], store=store)
        assert result.executed == [cell.key]
        assert result[cell.key].ok

    def test_duplicate_cells_compute_once(self):
        result = run_sweep([tiny_cell("x"), tiny_cell("y")])
        assert result.executed == ["x"]
        assert result["y"].history == result["x"].history

    def test_cache_hit_rebinds_key_and_tags_to_the_requesting_cell(self, tmp_path):
        store = ResultStore(tmp_path)
        original = SweepCell(key="gridA/cell", config=tiny_config(), tags={"role": "A"})
        run_sweep([original], store=store)
        # same config requested by a different grid under different labels
        requester = SweepCell(key="gridB/cell", config=tiny_config(), tags={"role": "B"})
        result = run_sweep([requester], store=store)
        assert result.reused == ["gridB/cell"]
        assert result["gridB/cell"].key == "gridB/cell"
        assert result["gridB/cell"].tags == {"role": "B"}
        # duplicates inside one grid get their own labels too
        dup = run_sweep([tiny_cell("x"), SweepCell(key="y", config=tiny_config(), tags={"n": 2})])
        assert dup["y"].key == "y" and dup["y"].tags == {"n": 2}


class TestParity:
    def test_parallel_sweep_matches_serial_single_cell_runs(self, tmp_path):
        cells = [tiny_cell("fedavg"), tiny_cell("standalone", algorithm="standalone")]
        store = ResultStore(tmp_path)
        sweep = run_sweep(cells, store=store, jobs=2, executor="thread")
        sweep.raise_failures()
        for cell in cells:
            direct = Federation.from_config(cell.config).run()
            assert sweep[cell.key].history == direct

    def test_store_round_trip_preserves_history_exactly(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = tiny_cell()
        live = run_sweep([cell], store=store)[cell.key].history
        reloaded = store.load(cell.config_hash).history
        assert reloaded == live

    def test_export_is_valid_json_with_summaries(self, tmp_path):
        from repro.experiments import export_results

        store = ResultStore(tmp_path)
        cell = tiny_cell()
        run_sweep([cell], store=store)
        payload = json.loads(export_results(store.load_all()))
        assert payload["cells"][0]["config_hash"] == cell.config_hash
        assert payload["cells"][0]["final_accuracy"] is not None
        assert payload["details"][0]["config"] == cell.config.to_dict()

    def test_every_grid_serializes_to_strict_json(self):
        """No Infinity/NaN in any declared grid: the result store and the
        CI artifact must parse under RFC 8259 (jq, JS), not just Python."""
        from repro.experiments import (
            aggregation_spec,
            fig1_spec,
            fig2_spec,
            fig3_spec,
            gate_spec,
            heterogeneity_spec,
            pruning_step_spec,
            table1_spec,
        )

        specs = [
            smoke_spec(),
            table1_spec("mnist"),
            fig1_spec("mnist"),
            fig2_spec("mnist"),
            fig3_spec("mnist"),
            aggregation_spec("mnist"),
            gate_spec("mnist"),
            heterogeneity_spec("mnist"),
            pruning_step_spec("mnist"),
        ]
        for spec in specs:
            for cell in spec.expand():
                json.dumps(cell.config.to_dict(), allow_nan=False)
