"""Trajectory tracking, the report generator and new CLI subcommands."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import run_fig1_trajectory
from repro.experiments.report import build_report
from repro.federated import FederationConfig, LocalTrainConfig, make_clients
from repro.federated.builder import model_factory
from repro.federated.trainers.subfedavg import SubFedAvgUn, TrajectoryPoint
from repro.pruning import UnstructuredConfig


class TestTrajectoryTracking:
    def make_trainer(self, track):
        config = FederationConfig(
            dataset="mnist", algorithm="sub-fedavg-un", num_clients=3,
            n_train=120, n_test=60, seed=0,
            local=LocalTrainConfig(epochs=1, batch_size=10),
        )
        clients = make_clients(config)
        return SubFedAvgUn(
            clients,
            model_factory(config),
            rounds=2,
            sample_fraction=1.0,
            seed=0,
            unstructured=UnstructuredConfig(
                target_rate=0.5, step=0.25, epsilon=0.0, acc_threshold=0.0
            ),
            track_trajectory=track,
        )

    def test_disabled_by_default(self):
        trainer = self.make_trainer(track=False)
        trainer.run()
        assert trainer.trajectory == []

    def test_points_recorded_per_participant_per_round(self):
        trainer = self.make_trainer(track=True)
        trainer.run()
        assert len(trainer.trajectory) == 2 * 3  # rounds x clients
        assert all(isinstance(point, TrajectoryPoint) for point in trainer.trajectory)

    def test_sparsity_monotone_per_client(self):
        trainer = self.make_trainer(track=True)
        trainer.run()
        per_client = {}
        for point in trainer.trajectory:
            per_client.setdefault(point.client_id, []).append(point.sparsity)
        for series in per_client.values():
            assert all(a <= b + 1e-12 for a, b in zip(series, series[1:]))

    def test_fig1_trajectory_driver(self):
        curves = run_fig1_trajectory("mnist", preset="smoke", seed=0, step=0.2)
        assert curves
        for curve in curves.values():
            assert all(0.0 <= acc <= 1.0 for _, acc in curve)


class TestReportGenerator:
    def test_builds_markdown(self):
        text = build_report(datasets=("mnist",), preset="smoke", seed=0)
        assert "# Sub-FedAvg reproduction report" in text
        assert "Table 1" in text and "Table 2" in text
        assert "Figure 2" in text and "Figure 3" in text

    def test_write_report(self, tmp_path):
        from repro.experiments.report import write_report

        out = tmp_path / "report.md"
        text = write_report(out, datasets=("mnist",), preset="smoke", seed=0)
        assert out.read_text() == text


class TestNewCliCommands:
    def test_ablate_parser(self):
        args = build_parser().parse_args(["ablate", "--which", "gate"])
        assert args.which == "gate"

    def test_ablate_invalid_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablate", "--which", "bogus"])

    def test_ablate_step_command(self, capsys):
        assert main(["ablate", "--which", "step", "--dataset", "mnist"]) == 0
        out = capsys.readouterr().out
        assert "variant" in out and "step=" in out

    def test_report_command(self, capsys, tmp_path):
        out_path = tmp_path / "r.md"
        assert main(["report", "--dataset", "mnist", "--out", str(out_path)]) == 0
        assert out_path.exists()
