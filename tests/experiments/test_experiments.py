"""Experiment drivers: presets, Table 2 exact values, smoke Table 1 / figures."""

import numpy as np
import pytest

from repro.experiments import (
    PRESETS,
    ascii_plot,
    fig1_series,
    fig2_series,
    fig3_series,
    format_table,
    format_table1,
    format_table2,
    get_preset,
    rounds_to_target,
    run_convergence,
    run_sparsity_sweep,
    run_table1,
    run_table2,
    uniform_channel_mask,
)
from repro.experiments.figures import SparsitySweepPoint
from repro.models import create_model


class TestPresets:
    def test_all_presets_exist(self):
        assert {"smoke", "small", "paper"} <= set(PRESETS)

    def test_paper_preset_matches_protocol(self):
        preset = get_preset("paper")
        assert preset.num_clients == 100
        assert preset.sample_fraction == 0.1
        assert preset.local_epochs == 5

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            get_preset("huge")


class TestTable2:
    def test_row_structure(self):
        rows = run_table2("cifar10")
        names = [row.algorithm for row in rows]
        assert "fedavg" in names
        assert any(name.startswith("sub-fedavg-hy") for name in names)

    def test_baselines_have_no_reduction(self):
        rows = run_table2("cifar10")
        for row in rows:
            if not row.algorithm.startswith("sub-fedavg"):
                assert row.flop_reduction == 1.0
                assert row.param_reduction == 0.0

    def test_unstructured_rows_keep_flops(self):
        rows = run_table2("cifar10")
        for row in rows:
            if row.algorithm.startswith("sub-fedavg-un"):
                assert row.flop_reduction == 1.0
                assert row.param_reduction > 0.0

    def test_hybrid_flop_factor_in_paper_range(self):
        """Paper: 2.4x on LeNet-5 with ~half the channels pruned."""
        rows = run_table2("cifar10")
        factors = [
            row.flop_reduction
            for row in rows
            if row.algorithm.startswith("sub-fedavg-hy")
        ]
        assert all(2.0 <= factor <= 3.0 for factor in factors)

    def test_formatting(self):
        text = format_table2("cifar10", run_table2("cifar10"))
        assert "Table 2" in text and "flop" in text

    def test_uniform_channel_mask_keeps_minimum(self):
        model = create_model("cifar10")
        mask = uniform_channel_mask(model, rate=0.99)
        for _, keep in mask.items():
            assert keep.sum() >= 1


class TestTable1Smoke:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1("mnist", preset="smoke", seed=0)

    def test_contains_all_algorithms(self, rows):
        names = [row.algorithm for row in rows]
        assert "standalone" in names
        assert "fedavg" in names
        assert "fedprox" in names  # mnist includes fedprox
        assert sum(name.startswith("sub-fedavg-un") for name in names) == 3
        assert sum(name.startswith("sub-fedavg-hy") for name in names) == 3

    def test_accuracies_valid(self, rows):
        assert all(0.0 <= row.accuracy <= 1.0 for row in rows)

    def test_standalone_free(self, rows):
        standalone = next(row for row in rows if row.algorithm == "standalone")
        assert standalone.communication_gb == 0.0

    def test_subfedavg_cheaper_than_fedavg(self, rows):
        fedavg = next(row for row in rows if row.algorithm == "fedavg")
        sub = next(row for row in rows if row.algorithm.startswith("sub-fedavg-un@70"))
        assert sub.communication_gb < fedavg.communication_gb

    def test_formatting(self, rows):
        text = format_table1("mnist", rows)
        assert "Table 1" in text

    def test_cifar_excludes_fedprox_by_default(self):
        rows = run_table1(
            "cifar10", preset="smoke", seed=0, include_fedprox=False
        )
        assert all(row.algorithm != "fedprox" for row in rows)


class TestFigures:
    def test_sparsity_sweep_smoke(self):
        points = run_sparsity_sweep("mnist", targets=(0.0, 0.5), preset="smoke")
        assert len(points) == 2
        assert points[0].achieved_sparsity == 0.0
        assert points[1].achieved_sparsity > 0.0

    def test_fig1_fig2_series_shapes(self):
        points = [
            SparsitySweepPoint(0.0, 0.0, 0.5, {0: 0.4, 1: 0.6}),
            SparsitySweepPoint(0.5, 0.45, 0.7, {0: 0.6, 1: 0.8}),
        ]
        per_client = fig1_series(points, client_ids=[0, 1])
        assert per_client[0] == [(0.0, 0.4), (0.45, 0.6)]
        curve = fig2_series(points)
        assert curve == [(0.0, 0.5), (0.45, 0.7)]

    def test_convergence_and_rounds_to_target(self):
        histories = run_convergence(
            "mnist", algorithms=("fedavg", "sub-fedavg-un"), preset="smoke"
        )
        series = fig3_series(histories)
        assert set(series) == {"fedavg", "sub-fedavg-un"}
        assert all(len(points) > 0 for points in series.values())
        targets = rounds_to_target(histories, target_accuracy=0.0)
        assert all(value == 1 for value in targets.values())

    def test_ascii_plot(self):
        text = ascii_plot([(0.0, 0.1), (0.5, 0.9), (1.0, 0.5)])
        assert "*" in text
        assert ascii_plot([]) == "(empty series)"


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
