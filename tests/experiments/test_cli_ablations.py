"""CLI subcommands and the ablation drivers (smoke scale)."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.ablations import (
    ablate_aggregation,
    ablate_mask_distance_gate,
    ablate_pruning_step,
)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "mnist"
        assert args.algorithm == "sub-fedavg-un"
        assert args.preset == "smoke"

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "svhn"])

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "bogus"])


class TestCommands:
    def test_table2_command(self, capsys):
        assert main(["table2", "--dataset", "cifar10"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "sub-fedavg-hy" in out

    def test_run_command_with_save(self, capsys, tmp_path):
        save_path = tmp_path / "history.json"
        code = main(
            ["run", "--dataset", "mnist", "--algorithm", "fedavg",
             "--preset", "smoke", "--save", str(save_path)]
        )
        assert code == 0
        assert save_path.exists()
        out = capsys.readouterr().out
        assert "final personalized accuracy" in out

        from repro.utils import load_history

        history = load_history(save_path)
        assert history.algorithm == "fedavg"


class TestAblations:
    def test_aggregation_ablation_shapes(self):
        results = ablate_aggregation("mnist", preset="smoke", seed=0)
        assert [result.variant for result in results] == ["intersection", "zerofill"]
        assert all(0.0 <= result.accuracy <= 1.0 for result in results)
        assert all(result.sparsity > 0.0 for result in results)

    def test_gate_ablation_shapes(self):
        results = ablate_mask_distance_gate("mnist", preset="smoke", seed=0)
        assert len(results) == 2
        gated, ungated = results
        assert ungated.sparsity >= gated.sparsity - 1e-9

    def test_step_ablation_monotone_sparsity(self):
        results = ablate_pruning_step("mnist", steps=(0.1, 0.5), preset="smoke", seed=0)
        assert results[-1].sparsity >= results[0].sparsity - 1e-9
