"""VGGLite: shapes, metadata, pruning and compaction on a deeper net."""

import numpy as np
import pytest

from repro.models import VGGLite
from repro.pruning import (
    ChannelMask,
    bn_scale_channel_mask,
    compact_model,
    expand_channel_mask,
    reduction_report,
)
from repro.tensor import Tensor


class TestForward:
    def test_cifar_shape(self, rng):
        model = VGGLite(num_classes=10, in_channels=3, input_size=32, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_mnist_shape(self, rng):
        model = VGGLite(num_classes=10, in_channels=1, input_size=28, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_custom_widths(self, rng):
        model = VGGLite(widths=(8, 8, 8), input_size=32, rng=rng)
        assert model.total_channels() == 24

    def test_wrong_width_count_rejected(self, rng):
        with pytest.raises(ValueError):
            VGGLite(widths=(8, 8), rng=rng)


class TestPruningWiring:
    def test_three_chained_units(self, rng):
        model = VGGLite(rng=rng)
        assert [unit.conv for unit in model.conv_units] == ["conv1", "conv2", "conv3"]
        assert model.conv_units[0].next_conv == "conv2"
        assert model.conv_units[-1].next_conv is None
        assert model.conv_units[-1].spatial == 4  # 32 -> 16 -> 8 -> 4

    def test_expand_channel_mask_chains(self, rng):
        model = VGGLite(rng=rng)
        channels = ChannelMask.dense_for(model)
        channels["bn2"][0] = False
        masks = expand_channel_mask(model, channels)
        assert (masks["conv2.weight"][0] == 0).all()
        assert (masks["conv3.weight"][:, 0] == 0).all()

    def test_bn_scale_mask_covers_all_stages(self, rng):
        model = VGGLite(rng=rng)
        mask = bn_scale_channel_mask(model, rate=0.3)
        assert set(iter(mask)) == {"bn1", "bn2", "bn3"}

    def test_compaction_equivalence(self, rng):
        model = VGGLite(in_channels=1, input_size=28, rng=rng)
        x = rng.normal(size=(3, 1, 28, 28))
        model.train()
        model(Tensor(x))
        model.eval()
        channels = ChannelMask.dense_for(model)
        channels["bn1"][:4] = False
        channels["bn3"][10:] = False
        compacted = compact_model(model, channels)
        compacted.eval()
        expand_channel_mask(model, channels).apply_to_model(model)
        np.testing.assert_allclose(
            compacted(Tensor(x)).data, model(Tensor(x)).data, atol=1e-9
        )


class TestDepthClaim:
    """§3.5: structured pruning pays more on deeper networks."""

    def test_flop_reduction_compounds_with_depth(self, rng):
        from repro.models import LeNet5

        def half_channel_factor(model, side):
            channels = ChannelMask.dense_for(model)
            for bn_name, count in model.channel_census():
                keep = np.ones(count, dtype=bool)
                keep[count // 2 :] = False
                channels[bn_name] = keep
            return reduction_report(model, channels, side).flop_reduction

        shallow = half_channel_factor(LeNet5(rng=rng), 32)
        deep = half_channel_factor(VGGLite(rng=rng), 32)
        assert deep > shallow
