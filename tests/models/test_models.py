"""Paper architectures: shapes, censuses and pruning metadata consistency."""

import numpy as np
import pytest

from repro.models import CNN5, LeNet5, MLP, create_model, parameter_census
from repro.models.registry import input_spatial_size
from repro.tensor import Tensor


class TestLeNet5:
    def test_forward_shape(self, rng):
        model = LeNet5(num_classes=10, rng=rng)
        out = model(Tensor(rng.normal(size=(4, 3, 32, 32))))
        assert out.shape == (4, 10)

    def test_parameter_count_matches_paper(self, rng):
        """§4.1 quotes ~62k parameters for the CIFAR-10 LeNet-5."""
        model = LeNet5(num_classes=10, rng=rng)
        total = model.num_parameters()
        assert abs(total - 62000) < 1500

    def test_channel_count_matches_paper(self, rng):
        """§4.2.3 speaks of 22 prunable channels (6 + 16)."""
        assert LeNet5(rng=rng).total_channels() == 22

    def test_cifar100_head(self, rng):
        model = LeNet5(num_classes=100, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 100)


class TestCNN5:
    def test_forward_shape(self, rng):
        model = CNN5(num_classes=10, rng=rng)
        out = model(Tensor(rng.normal(size=(3, 1, 28, 28))))
        assert out.shape == (3, 10)

    def test_channel_count_matches_paper(self, rng):
        """§4.1: "30 channels" = 10 + 20."""
        assert CNN5(rng=rng).total_channels() == 30

    def test_emnist_head(self, rng):
        model = CNN5(num_classes=26, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 26)


class TestMLP:
    def test_forward_flattens(self, rng):
        model = MLP(16, 3, hidden=(8,), rng=rng)
        out = model(Tensor(rng.normal(size=(5, 1, 4, 4))))
        assert out.shape == (5, 3)

    def test_layer_names(self, rng):
        model = MLP(4, 2, hidden=(8, 8), rng=rng)
        assert model.classifier_names == ["fc1", "fc2", "fc3"]

    def test_no_conv_units(self, rng):
        assert MLP(4, 2, rng=rng).conv_units == []


class TestRegistry:
    @pytest.mark.parametrize(
        "dataset,model_type",
        [("mnist", CNN5), ("emnist", CNN5), ("cifar10", LeNet5), ("cifar100", LeNet5)],
    )
    def test_pairing(self, dataset, model_type):
        assert isinstance(create_model(dataset), model_type)

    def test_seeded_models_identical(self):
        a = create_model("cifar10", seed=11)
        b = create_model("cifar10", seed=11)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self):
        a = create_model("cifar10", seed=1)
        b = create_model("cifar10", seed=2)
        assert not np.allclose(a.conv1.weight.data, b.conv1.weight.data)

    def test_num_classes_override(self):
        model = create_model("mnist", num_classes=7)
        assert model.num_classes == 7

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            create_model("svhn")

    def test_registered_dataset_without_builder_falls_back_to_mlp(self):
        """Third-party datasets train out of the box on a flattened MLP."""
        from repro.data.registry import register_dataset, unregister_dataset
        from repro.data.synthetic import DatasetSpec
        from repro.models import register_model, unregister_model

        spec = DatasetSpec("odd-shape", (2, 7, 9), 5, signal=1.0, noise=1.0, max_shift=0)
        register_dataset(spec)(lambda s, n_train, n_test, seed: None)
        try:
            fallback = create_model("odd-shape", seed=0)
            assert isinstance(fallback, MLP)
            assert fallback.num_classes == 5

            @register_model("odd-shape")
            def build(num_classes, in_channels, rng):
                return MLP(2 * 7 * 9, num_classes, hidden=(4,), rng=rng)

            registered = create_model("odd-shape", seed=0)
            assert isinstance(registered, MLP)
            # Teardown restores the fallback path.
            assert unregister_model("odd-shape") is build
            assert isinstance(create_model("odd-shape", seed=0), MLP)
        finally:
            unregister_dataset("odd-shape")
        with pytest.raises(KeyError, match="no model is registered"):
            unregister_model("odd-shape")

    def test_input_spatial_size(self):
        assert input_spatial_size("mnist") == 28
        assert input_spatial_size("cifar10") == 32

    def test_parameter_census_total(self):
        model = create_model("cifar10")
        census = parameter_census(model)
        assert census["total"] == model.num_parameters()
        assert census["conv1.weight"] == 6 * 3 * 25


class TestPruningMetadata:
    """The model metadata must be internally consistent for pruning to work."""

    @pytest.mark.parametrize("dataset", ["mnist", "cifar10"])
    def test_conv_units_reference_real_modules(self, dataset):
        model = create_model(dataset)
        modules = dict(model.named_modules())
        for unit in model.conv_units:
            assert unit.conv in modules
            assert unit.bn in modules
            if unit.next_conv is not None:
                assert unit.next_conv in modules

    @pytest.mark.parametrize("dataset", ["mnist", "cifar10"])
    def test_bn_width_matches_conv(self, dataset):
        model = create_model(dataset)
        modules = dict(model.named_modules())
        for unit in model.conv_units:
            assert modules[unit.bn].num_features == modules[unit.conv].out_channels

    @pytest.mark.parametrize("dataset", ["mnist", "cifar10"])
    def test_final_unit_spatial_maps_to_fc(self, dataset):
        model = create_model(dataset)
        modules = dict(model.named_modules())
        last = model.conv_units[-1]
        fc = modules[model.first_fc]
        expected = modules[last.conv].out_channels * last.spatial ** 2
        assert fc.in_features == expected

    def test_prunable_names_exist(self):
        model = create_model("cifar10")
        params = dict(model.named_parameters())
        for name in model.prunable_weight_names():
            assert name in params

    def test_fc_weight_names_subset_of_prunable(self):
        model = create_model("mnist")
        assert set(model.fc_weight_names()) <= set(model.prunable_weight_names())
